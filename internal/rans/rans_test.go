package rans

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
)

// binRoundTrip encodes bins against per-position probability bytes and
// decodes them back through one state.
func binRoundTrip(t *testing.T, bins []int, probs []uint8) {
	t.Helper()
	var enc BinEncoder
	enc.Reset()
	for i := len(bins) - 1; i >= 0; i-- {
		enc.Put(bins[i], ProbToFreq(probs[i]))
	}
	seg := enc.Finish()

	var dec BinDecoder
	if err := dec.Init(seg); err != nil {
		t.Fatal(err)
	}
	for i := range bins {
		got, err := dec.Get(ProbToFreq(probs[i]))
		if err != nil {
			t.Fatalf("bin %d: %v", i, err)
		}
		if got != bins[i] {
			t.Fatalf("bin %d: got %d, want %d", i, got, bins[i])
		}
	}
	if err := dec.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBinRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(500)
		bins := make([]int, n)
		probs := make([]uint8, n)
		for i := range bins {
			probs[i] = uint8(1 + rng.Intn(255))
			if rng.Intn(256) < int(probs[i]) {
				bins[i] = 0
			} else {
				bins[i] = 1
			}
		}
		binRoundTrip(t, bins, probs)
	}
	// Degenerate: empty sequence, extreme probabilities, all-same bins.
	binRoundTrip(t, nil, nil)
	all0, all1 := make([]int, 1000), make([]int, 1000)
	pLo, pHi := make([]uint8, 1000), make([]uint8, 1000)
	for i := range all1 {
		all1[i] = 1
		pLo[i], pHi[i] = 1, 255
	}
	binRoundTrip(t, all0, pHi) // likely bins: near-free
	binRoundTrip(t, all1, pLo)
	binRoundTrip(t, all0, pLo) // unlikely bins: expensive but exact
	binRoundTrip(t, all1, pHi)
}

// TestBinCompression: 1000 bins that are zero 95% of the time, coded with a
// matched static probability, must cost well under 1 bit/bin.
func TestBinCompression(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 10000
	bins := make([]int, n)
	probs := make([]uint8, n)
	for i := range bins {
		probs[i] = 243 // p0 ≈ 0.95
		if rng.Float64() >= 0.95 {
			bins[i] = 1
		}
	}
	var enc BinEncoder
	enc.Reset()
	for i := n - 1; i >= 0; i-- {
		enc.Put(bins[i], ProbToFreq(probs[i]))
	}
	seg := enc.Finish()
	bitsPerBin := float64(len(seg)*8) / float64(n)
	// H(0.95) ≈ 0.286; allow quantization + flush slack.
	if bitsPerBin > 0.35 {
		t.Fatalf("%.3f bits/bin on p=0.95 source, want < 0.35", bitsPerBin)
	}
}

func TestBinDecoderStrictness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bins := make([]int, 300)
	probs := make([]uint8, 300)
	for i := range bins {
		bins[i] = rng.Intn(2)
		probs[i] = uint8(1 + rng.Intn(255))
	}
	var enc BinEncoder
	enc.Reset()
	for i := len(bins) - 1; i >= 0; i-- {
		enc.Put(bins[i], ProbToFreq(probs[i]))
	}
	seg := append([]byte(nil), enc.Finish()...)

	decodeAll := func(seg []byte) error {
		var dec BinDecoder
		if err := dec.Init(seg); err != nil {
			return err
		}
		for i := range bins {
			if _, err := dec.Get(ProbToFreq(probs[i])); err != nil {
				return err
			}
		}
		return dec.Close()
	}
	if err := decodeAll(seg); err != nil {
		t.Fatalf("clean segment rejected: %v", err)
	}
	// Every strict prefix must fail Init, Get or Close.
	for n := 0; n < len(seg); n++ {
		if err := decodeAll(seg[:n]); err == nil {
			t.Fatalf("truncated segment [:%d] accepted", n)
		} else if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
			t.Fatalf("truncated segment [:%d]: untyped error %v", n, err)
		}
		// Trailing garbage must fail Close.
		padded := append(append([]byte(nil), seg...), 0xAA)
		if err := decodeAll(padded); err == nil {
			t.Fatal("segment with trailing byte accepted")
		}
	}
}

func uniformFreqs(t *testing.T) *Freqs {
	t.Helper()
	var counts [256]int64
	for i := range counts {
		counts[i] = 1
	}
	f, err := NormalizeFreqs(&counts)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestBytesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 17, 1000, 65536} {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(rng.Intn(16)) // skewed alphabet
		}
		var counts [256]int64
		for _, b := range data {
			counts[b]++
		}
		var f *Freqs
		if n == 0 {
			f = uniformFreqs(t)
		} else {
			var err error
			f, err = NormalizeFreqs(&counts)
			if err != nil {
				t.Fatal(err)
			}
		}
		segs, err := EncodeBytes(data, f)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		out, err := DecodeBytes(segs, n, f)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("n=%d: round trip differs", n)
		}
	}
}

// TestLaneIndependence is the structural proof behind the intra-chunk
// parallel-decode claim: each interleaved state decodes its stride-4
// subsequence on its own goroutine, with no shared mutable state beyond
// disjoint regions of the output slice, and the result is byte-identical to
// the serial decode.
func TestLaneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := make([]byte, 40000)
	for i := range data {
		data[i] = byte(rng.NormFloat64()*8 + 128)
	}
	var counts [256]int64
	for _, b := range data {
		counts[b]++
	}
	f, err := NormalizeFreqs(&counts)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := EncodeBytes(data, f)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := DecodeBytes(segs, len(data), f)
	if err != nil {
		t.Fatal(err)
	}

	parallelOut := make([]byte, len(data))
	var wg sync.WaitGroup
	errs := make([]error, Interleave)
	for j := 0; j < Interleave; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			errs[j] = decodeLane(segs[j], parallelOut, j, f)
		}(j)
	}
	wg.Wait()
	for j, e := range errs {
		if e != nil {
			t.Fatalf("lane %d: %v", j, e)
		}
	}
	if !bytes.Equal(parallelOut, serial) || !bytes.Equal(parallelOut, data) {
		t.Fatal("parallel lane decode differs from serial decode")
	}
}

func TestFreqsFromTableValidation(t *testing.T) {
	var bad [256]uint32
	bad[0] = Scale - 1 // sums short
	if _, err := FreqsFromTable(&bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short table: %v", err)
	}
	bad[1] = 2 // sums long
	if _, err := FreqsFromTable(&bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("long table: %v", err)
	}
	bad[1] = 1
	if _, err := FreqsFromTable(&bad); err != nil {
		t.Fatalf("exact table rejected: %v", err)
	}
}

func TestBytesCompressesSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := make([]byte, 1<<16)
	for i := range data {
		v := int(rng.NormFloat64()*3 + 8)
		if v < 0 {
			v = 0
		}
		if v > 15 {
			v = 15
		}
		data[i] = byte(v)
	}
	var counts [256]int64
	for _, b := range data {
		counts[b]++
	}
	f, err := NormalizeFreqs(&counts)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := EncodeBytes(data, f)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range segs {
		total += len(s)
	}
	if ratio := float64(total) / float64(len(data)); ratio > 0.55 {
		t.Fatalf("ratio %.3f on 16-level gaussian source, want < 0.55", ratio)
	}
}
