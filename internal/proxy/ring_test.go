package proxy

import (
	"fmt"
	"testing"
)

// TestRingStability pins the property the sharding story rests on: removing
// one of N backends remaps only the keys that backend owned. Every key not
// owned by the removed backend must keep its owner, and the remapped
// fraction must be near 1/N.
func TestRingStability(t *testing.T) {
	names := []string{"10.0.0.1:8265", "10.0.0.2:8265", "10.0.0.3:8265"}
	full := newRing(names, 128)

	const keys = 10000
	ownerBefore := make([]string, keys)
	for i := 0; i < keys; i++ {
		ownerBefore[i] = names[full.owner(fmt.Sprintf("key-%d", i))]
	}

	for drop := range names {
		survivors := make([]string, 0, len(names)-1)
		for i, n := range names {
			if i != drop {
				survivors = append(survivors, n)
			}
		}
		small := newRing(survivors, 128)

		moved := 0
		for i := 0; i < keys; i++ {
			after := survivors[small.owner(fmt.Sprintf("key-%d", i))]
			if ownerBefore[i] == names[drop] {
				moved++
				continue // this key had to move; any survivor is legal
			}
			if after != ownerBefore[i] {
				t.Fatalf("key-%d not owned by removed backend %s moved %s → %s",
					i, names[drop], ownerBefore[i], after)
			}
		}
		// The removed backend owned ~1/3 of the keyspace; allow generous
		// slack for hash unevenness at 128 vnodes.
		if frac := float64(moved) / keys; frac < 0.15 || frac > 0.55 {
			t.Errorf("dropping %s remapped %.1f%% of keys, want ~33%%", names[drop], frac*100)
		}
	}
}

// TestRingSequence pins the failover walk: sequence starts at the owner,
// visits every distinct backend exactly once, and sequence[1] is exactly
// where the key lands if the owner is removed — the consistency between
// transient skip-ahead and permanent removal.
func TestRingSequence(t *testing.T) {
	names := []string{"a:1", "b:1", "c:1", "d:1"}
	r := newRing(names, 64)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("seq-key-%d", i)
		seq := r.sequence(key)
		if len(seq) != len(names) {
			t.Fatalf("sequence(%q) has %d entries, want %d", key, len(seq), len(names))
		}
		if seq[0] != r.owner(key) {
			t.Fatalf("sequence(%q)[0] = %d, owner = %d", key, seq[0], r.owner(key))
		}
		seen := map[int]bool{}
		for _, idx := range seq {
			if seen[idx] {
				t.Fatalf("sequence(%q) visits backend %d twice: %v", key, idx, seq)
			}
			seen[idx] = true
		}

		// Remove the owner; the new owner must be sequence[1].
		survivors := make([]string, 0, len(names)-1)
		for j, n := range names {
			if j != seq[0] {
				survivors = append(survivors, n)
			}
		}
		after := survivors[newRing(survivors, 64).owner(key)]
		if after != names[seq[1]] {
			t.Fatalf("key %q: owner removed lands on %s, sequence[1] = %s", key, after, names[seq[1]])
		}
	}
}

// TestRingDeterministic: same inputs, same ring — construction order of
// identical name sets cannot differ across processes.
func TestRingDeterministic(t *testing.T) {
	names := []string{"x:1", "y:1", "z:1"}
	a, b := newRing(names, 128), newRing(names, 128)
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("det-%d", i)
		if a.owner(k) != b.owner(k) {
			t.Fatalf("owner(%q) differs between identical rings", k)
		}
	}
}
