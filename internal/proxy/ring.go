package proxy

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over backend indices. Each backend owns
// vnodes virtual points; a key hashes to a position and is owned by the
// first point clockwise. The property the sharding story rests on (pinned by
// TestRingStability): removing one of N backends remaps only the keys that
// backend owned — every other key keeps its owner, so a fleet change does
// not stampede the survivors' caches or sessions.
//
// The ring is immutable after construction. Failure handling does not
// rebuild it: an unavailable owner is skipped by walking to the next
// distinct backend in ring order (sequence), which is exactly the owner the
// key would have if the dead backend were removed — the same stability
// property, applied transiently.
type ring struct {
	points []ringPoint // sorted by hash
	n      int         // distinct backends
}

type ringPoint struct {
	hash uint64
	idx  int // backend index
}

// hashKey positions a routing key on the ring: FNV-1a 64 with a murmur
// fmix64 finalizer. Raw FNV-1a avalanches poorly in the high bits for
// short, similar inputs ("host#0", "host#1", …), and ring ordering is
// dominated by the high bits — without the finalizer one backend can end
// up owning most of the keyspace.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// newRing builds the ring from backend names with vnodes points each.
func newRing(names []string, vnodes int) *ring {
	if vnodes < 1 {
		vnodes = 1
	}
	r := &ring{
		points: make([]ringPoint, 0, len(names)*vnodes),
		n:      len(names),
	}
	for i, name := range names {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hashKey(fmt.Sprintf("%s#%d", name, v)), idx: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Identical virtual-point hashes (vanishingly rare) break the tie by
		// backend index so construction order cannot change ownership.
		return r.points[a].idx < r.points[b].idx
	})
	return r
}

// owner returns the backend index owning key.
func (r *ring) owner(key string) int {
	return r.points[r.search(hashKey(key))].idx
}

// search finds the first point at or clockwise of h.
func (r *ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0 // wrap
	}
	return i
}

// sequence returns all distinct backends in ring order starting at key's
// owner: sequence[0] is the owner, sequence[1] is where the key lands if the
// owner is removed, and so on. This is the preference order the proxy walks
// for failover, retries and hedging.
func (r *ring) sequence(key string) []int {
	seq := make([]int, 0, r.n)
	seen := make([]bool, r.n)
	start := r.search(hashKey(key))
	for off := 0; off < len(r.points) && len(seq) < r.n; off++ {
		p := r.points[(start+off)%len(r.points)]
		if !seen[p.idx] {
			seen[p.idx] = true
			seq = append(seq, p.idx)
		}
	}
	return seq
}
