package proxy

import (
	"testing"
	"time"
)

// fakeClock drives the breaker's open→half-open transition without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestBreaker(threshold int, openTimeout time.Duration) (*breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	b := newBreaker(threshold, openTimeout)
	b.now = clk.now
	return b, clk
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	if !b.allow() || !b.allow() {
		t.Fatal("closed breaker must admit traffic")
	}
	if b.failure() {
		t.Fatal("failure 1/3 must not open the circuit")
	}
	if b.failure() {
		t.Fatal("failure 2/3 must not open the circuit")
	}
	if !b.failure() {
		t.Fatal("failure 3/3 must report the open transition")
	}
	if b.snapshotState() != breakerOpen {
		t.Fatalf("state = %v, want open", b.snapshotState())
	}
	if b.allow() {
		t.Fatal("open breaker admitted traffic before the cool-down")
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	b.failure()
	b.failure()
	if b.success() {
		t.Fatal("closed-state success must not report a rejoin transition")
	}
	// The two earlier failures were cleared; three more are needed.
	b.failure()
	if b.failure() {
		t.Fatal("circuit opened after success reset; consecutive count leaked")
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.failure() // open
	clk.advance(999 * time.Millisecond)
	if b.allow() {
		t.Fatal("breaker admitted traffic 1ms before the cool-down elapsed")
	}
	clk.advance(2 * time.Millisecond)
	if !b.allow() {
		t.Fatal("cool-down elapsed; the probe must be admitted")
	}
	if b.snapshotState() != breakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.snapshotState())
	}
	if b.allow() {
		t.Fatal("second caller admitted while the half-open probe is in flight")
	}
	if !b.success() {
		t.Fatal("half-open probe success must report the rejoin transition")
	}
	if b.snapshotState() != breakerClosed || !b.allow() {
		t.Fatal("circuit did not close after the probe succeeded")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.failure()
	clk.advance(time.Second)
	if !b.allow() {
		t.Fatal("probe not admitted")
	}
	if !b.failure() {
		t.Fatal("half-open probe failure must report the re-open transition")
	}
	// The cool-down re-arms from the re-open instant.
	clk.advance(999 * time.Millisecond)
	if b.allow() {
		t.Fatal("re-opened breaker admitted traffic before a fresh cool-down")
	}
	clk.advance(2 * time.Millisecond)
	if !b.allow() {
		t.Fatal("fresh cool-down elapsed; probe must be admitted")
	}
}

// TestBreakerAbortReleasesProbe: a canceled hedge loser holding the
// half-open probe slot must release it without judging the backend, or the
// circuit wedges half-open forever.
func TestBreakerAbortReleasesProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.failure()
	clk.advance(time.Second)
	if !b.allow() {
		t.Fatal("probe not admitted")
	}
	b.abort()
	if b.snapshotState() != breakerHalfOpen {
		t.Fatalf("abort changed state to %v, want half-open retained", b.snapshotState())
	}
	if !b.allow() {
		t.Fatal("probe slot not released by abort")
	}
	if !b.success() {
		t.Fatal("fresh probe success must close the circuit")
	}
}
