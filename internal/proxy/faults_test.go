package proxy

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// ownerOf finds the backend index that owns key under the proxy's ring —
// sweep tests use it to aim scripted faults at exactly the backend the
// request will hit first.
func ownerOf(p *Proxy, key string) int { return p.ring.owner(key) }

// TestFaultSweep drives the full {latency, reset, truncation, 500,
// 503-drain} × {encode, decode} matrix through a 2-backend proxy with the
// scripted FlakyTransport aimed at the key's owner, asserting per-case:
// the client still gets the byte-exact 200, the retry counter moved (or
// didn't, for latency), the owner's failure counter moved, and failover
// landed on the other backend.
func TestFaultSweep(t *testing.T) {
	golden := goldenVectors(t)
	var stream, wantPlanes []byte
	for _, pair := range golden {
		stream, wantPlanes = pair[0], pair[1]
		break
	}
	encPayload := encodeBody(11, 1, 64, 64)
	const encQuery = "layers=1&rows=64&cols=64&qp=30"

	type sweepCase struct {
		name        string
		fault       faultinject.NetFault
		wantRetries int64 // delta of proxy.retries
		wantFails   int64 // delta of the owner's failure counter
		failover    bool  // response must come from the non-owner
	}
	cases := []sweepCase{
		{"latency", faultinject.ScriptLatency(20 * time.Millisecond), 0, 0, false},
		{"reset", faultinject.ScriptReset(), 1, 1, true},
		{"truncate", faultinject.ScriptTruncate(16), 1, 1, true},
		{"spurious-500", faultinject.ScriptStatus(500, ""), 1, 1, true},
		{"drain-503", faultinject.ScriptStatus(503, "0"), 1, 1, true},
	}

	for _, dir := range []string{"encode", "decode"} {
		for _, tc := range cases {
			t.Run(dir+"/"+tc.name, func(t *testing.T) {
				backends := newTestBackends(t, 2)
				ft := &faultinject.FlakyTransport{}
				p, base := newTestProxy(t, backends, ft, func(c *Config) {
					c.DisableHedge = true // hedging has its own test; keep counters exact
				})

				key := "sweep-" + dir + "-" + tc.name
				owner := ownerOf(p, key)
				other := backends[1-owner]
				ft.Match = faultinject.MatchHostPathPrefix(backends[owner].host, "/v1/")
				ft.Enqueue(tc.fault)

				path := fmt.Sprintf("/v1/decode?key=%s", key)
				payload, want := stream, wantPlanes
				if dir == "encode" {
					path = fmt.Sprintf("/v1/encode?key=%s&%s", key, encQuery)
					payload = encPayload
					// Reference bytes from the non-faulted backend directly.
					st, ref, _ := post(t, other.ts.URL+"/v1/encode?"+encQuery, encPayload)
					if st != http.StatusOK {
						t.Fatalf("reference encode status %d", st)
					}
					want = ref
				}

				before := counters(t, base)
				status, got, hdr := post(t, base+path, payload)
				after := counters(t, base)

				if status != http.StatusOK {
					t.Fatalf("status %d through fault %s: %s", status, tc.name, got)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("response bytes differ through fault %s (%d vs %d bytes)",
						tc.name, len(got), len(want))
				}
				if d := after["proxy.retries"] - before["proxy.retries"]; d != tc.wantRetries {
					t.Errorf("proxy.retries delta = %d, want %d", d, tc.wantRetries)
				}
				failKey := "proxy.backend." + backends[owner].host + ".failures"
				if d := after[failKey] - before[failKey]; d != tc.wantFails {
					t.Errorf("%s delta = %d, want %d", failKey, d, tc.wantFails)
				}
				from := hdr.Get("X-Llm265-Backend")
				if tc.failover && from != other.host {
					t.Errorf("response came from %s, want failover to %s", from, other.host)
				}
				if !tc.failover && from != backends[owner].host {
					t.Errorf("response came from %s, want the owner %s", from, backends[owner].host)
				}
				if applied := ft.Applied()[tc.fault.Kind]; applied != 1 {
					t.Errorf("fault %v applied %d times, want 1", tc.fault.Kind, applied)
				}
			})
		}
	}
}

// TestRetryAfterHonored: a 503 with Retry-After: 1 must delay the retry by
// about a second (capped by RetryAfterCap) — and with the cap configured
// short, must NOT wait the full hint.
func TestRetryAfterHonored(t *testing.T) {
	golden := goldenVectors(t)
	var stream []byte
	for _, pair := range golden {
		stream = pair[0]
		break
	}
	backends := newTestBackends(t, 1)
	ft := &faultinject.FlakyTransport{Match: faultinject.MatchHostPathPrefix(backends[0].host, "/v1/")}
	_, base := newTestProxy(t, backends, ft, func(c *Config) {
		c.DisableHedge = true
		c.RetryAfterCap = 250 * time.Millisecond
	})

	// Hint above the cap: the wait must be ≈cap, not ≈hint.
	ft.Enqueue(faultinject.ScriptStatus(503, "5"))
	start := time.Now()
	status, _, _ := post(t, base+"/v1/decode", stream)
	elapsed := time.Since(start)
	if status != http.StatusOK {
		t.Fatalf("status %d after 503+Retry-After", status)
	}
	if elapsed < 200*time.Millisecond {
		t.Errorf("retry after %v, want ≥ ~250ms (Retry-After honored)", elapsed)
	}
	if elapsed > 2*time.Second {
		t.Errorf("retry after %v, want the 250ms cap, not the 5s hint", elapsed)
	}
}

// TestHedgedDecode: the owner stalls, the hedge fires at the configured
// delay to the other backend, the client gets the bytes from the winner,
// and the canceled loser is NOT charged as a backend failure.
func TestHedgedDecode(t *testing.T) {
	golden := goldenVectors(t)
	var stream, wantPlanes []byte
	for _, pair := range golden {
		stream, wantPlanes = pair[0], pair[1]
		break
	}
	backends := newTestBackends(t, 2)
	ft := &faultinject.FlakyTransport{}
	p, base := newTestProxy(t, backends, ft, func(c *Config) {
		c.HedgeDelay = 20 * time.Millisecond
		c.MaxRetries = 0
	})

	key := "hedge-me"
	owner := ownerOf(p, key)
	other := backends[1-owner]
	ft.Match = faultinject.MatchHostPathPrefix(backends[owner].host, "/v1/")
	ft.Enqueue(faultinject.ScriptStall(10 * time.Second))

	before := counters(t, base)
	start := time.Now()
	status, got, hdr := post(t, base+"/v1/decode?key="+key, stream)
	elapsed := time.Since(start)
	after := counters(t, base)

	if status != http.StatusOK || !bytes.Equal(got, wantPlanes) {
		t.Fatalf("hedged decode: status %d, %d bytes", status, len(got))
	}
	if from := hdr.Get("X-Llm265-Backend"); from != other.host {
		t.Fatalf("winner = %s, want the hedge target %s", from, other.host)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("hedged decode took %v — the stall was waited out, not hedged around", elapsed)
	}
	if d := after["proxy.hedges"] - before["proxy.hedges"]; d != 1 {
		t.Errorf("proxy.hedges delta = %d, want 1", d)
	}
	if d := after["proxy.hedge_wins"] - before["proxy.hedge_wins"]; d != 1 {
		t.Errorf("proxy.hedge_wins delta = %d, want 1", d)
	}
	failKey := "proxy.backend." + backends[owner].host + ".failures"
	if d := after[failKey] - before[failKey]; d != 0 {
		t.Errorf("canceled stalled loser charged %d failures to %s, want 0", d, backends[owner].host)
	}
}

// TestPassiveEjectionShedRecovery walks the full breaker lifecycle through
// the HTTP surface: consecutive failures open the circuit (passive
// ejection), requests then shed with 503 + Retry-After in the typed
// taxonomy, and after the cool-down a half-open probe closes the circuit
// again with the recovery counted — no operator action anywhere.
func TestPassiveEjectionShedRecovery(t *testing.T) {
	golden := goldenVectors(t)
	var stream, wantPlanes []byte
	for _, pair := range golden {
		stream, wantPlanes = pair[0], pair[1]
		break
	}
	backends := newTestBackends(t, 1)
	ft := &faultinject.FlakyTransport{Match: faultinject.MatchHostPathPrefix(backends[0].host, "/v1/")}
	_, base := newTestProxy(t, backends, ft, func(c *Config) {
		c.DisableHedge = true
		c.MaxRetries = -1 // single attempt per request: the breaker walk must be exact
		c.BreakerThreshold = 2
		c.OpenTimeout = 100 * time.Millisecond
	})
	stateKey := "proxy.backend." + backends[0].host + ".state"

	// Two consecutive 500s: each answers 502 upstream (no retry budget),
	// and the second opens the circuit.
	ft.Enqueue(faultinject.ScriptStatus(500, ""), faultinject.ScriptStatus(500, ""))
	for i := 0; i < 2; i++ {
		status, body, _ := post(t, base+"/v1/decode", stream)
		if status != http.StatusBadGateway {
			t.Fatalf("request %d during failure run: status %d %s", i, status, body)
		}
		var eb struct {
			Class string `json:"class"`
		}
		if err := json.Unmarshal(body, &eb); err != nil || eb.Class != "upstream" {
			t.Fatalf("request %d error body %s, want class=upstream", i, body)
		}
	}
	c := counters(t, base)
	if c["proxy.ejections.passive"] != 1 {
		t.Fatalf("proxy.ejections.passive = %d, want 1", c["proxy.ejections.passive"])
	}
	if c[stateKey] != stateOpen {
		t.Fatalf("state gauge = %d, want %d (open)", c[stateKey], stateOpen)
	}

	// Open circuit, sole backend: shed immediately with the typed 503.
	status, body, hdr := post(t, base+"/v1/decode", stream)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("shed status = %d, want 503 (%s)", status, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	var eb struct {
		Class string `json:"class"`
	}
	if err := json.Unmarshal(body, &eb); err != nil || eb.Class != "rejected" {
		t.Fatalf("shed body %s, want class=rejected", body)
	}
	if c := counters(t, base); c["proxy.shed"] != 1 {
		t.Fatalf("proxy.shed = %d, want 1", c["proxy.shed"])
	}

	// The proxy's own healthz reflects the dead fleet.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("proxy /healthz with the whole fleet open-circuit = %d, want 503", resp.StatusCode)
	}

	// Cool-down elapses; the script is exhausted so the half-open probe
	// passes through to the healthy backend and closes the circuit.
	time.Sleep(120 * time.Millisecond)
	status, got, _ := post(t, base+"/v1/decode", stream)
	if status != http.StatusOK || !bytes.Equal(got, wantPlanes) {
		t.Fatalf("post-cooldown request: status %d, %d bytes — circuit did not recover", status, len(got))
	}
	c = counters(t, base)
	if c["proxy.recoveries"] != 1 {
		t.Errorf("proxy.recoveries = %d, want 1", c["proxy.recoveries"])
	}
	if c[stateKey] != stateHealthy {
		t.Errorf("state gauge = %d after recovery, want %d (healthy)", c[stateKey], stateHealthy)
	}
	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("proxy /healthz after recovery = %d, want 200", resp.StatusCode)
	}
}

// TestActiveProbing: the prober ejects a backend whose /healthz goes dark
// (traffic shifts to the survivor with zero client-visible errors) and
// readmits it after rise consecutive healthy probes.
func TestActiveProbing(t *testing.T) {
	golden := goldenVectors(t)
	var stream []byte
	for _, pair := range golden {
		stream = pair[0]
		break
	}
	backends := newTestBackends(t, 2)
	p, base := newTestProxy(t, backends, nil, func(c *Config) {
		c.ProbeInterval = 20 * time.Millisecond
		c.ProbeTimeout = 200 * time.Millisecond
		c.Rise, c.Fall = 2, 2
		c.DisableHedge = true
	})
	p.Start()

	key := "probe-key"
	owner := ownerOf(p, key)
	other := backends[1-owner]

	// Healthy fleet: the owner answers.
	_, _, hdr := post(t, base+"/v1/decode?key="+key, stream)
	if from := hdr.Get("X-Llm265-Backend"); from != backends[owner].host {
		t.Fatalf("healthy fleet routed to %s, want owner %s", from, backends[owner].host)
	}

	// Take the owner's healthz dark and wait for fall×interval plus slack.
	backends[owner].healthzDown.Store(true)
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && p.backends[owner].probeHealthy.Load() {
		time.Sleep(10 * time.Millisecond)
	}
	if p.backends[owner].probeHealthy.Load() {
		t.Fatal("prober never ejected the dark backend")
	}
	c := counters(t, base)
	if c["proxy.ejections.active"] < 1 {
		t.Fatalf("proxy.ejections.active = %d, want ≥1", c["proxy.ejections.active"])
	}
	if c["proxy.backend."+backends[owner].host+".state"] != stateProbeDown {
		t.Fatalf("ejected backend state gauge = %d, want %d",
			c["proxy.backend."+backends[owner].host+".state"], stateProbeDown)
	}

	// Traffic keeps flowing — to the survivor, with no retry needed (the
	// prober removed the backend before the request tried it).
	before := counters(t, base)
	status, _, hdr := post(t, base+"/v1/decode?key="+key, stream)
	after := counters(t, base)
	if status != http.StatusOK {
		t.Fatalf("request during ejection: status %d", status)
	}
	if from := hdr.Get("X-Llm265-Backend"); from != other.host {
		t.Fatalf("ejected-owner traffic went to %s, want %s", from, other.host)
	}
	if d := after["proxy.retries"] - before["proxy.retries"]; d != 0 {
		t.Errorf("active ejection still cost %d retries; routing should skip ejected backends outright", d)
	}

	// Lights back on: rise probes readmit it, traffic returns to the owner.
	backends[owner].healthzDown.Store(false)
	deadline = time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && !p.backends[owner].probeHealthy.Load() {
		time.Sleep(10 * time.Millisecond)
	}
	if !p.backends[owner].probeHealthy.Load() {
		t.Fatal("prober never readmitted the recovered backend")
	}
	if c := counters(t, base); c["proxy.recoveries"] < 1 {
		t.Errorf("proxy.recoveries = %d, want ≥1", c["proxy.recoveries"])
	}
	_, _, hdr = post(t, base+"/v1/decode?key="+key, stream)
	if from := hdr.Get("X-Llm265-Backend"); from != backends[owner].host {
		t.Errorf("recovered fleet routed to %s, want owner %s", from, backends[owner].host)
	}
}
