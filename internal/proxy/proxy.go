// Package proxy is the fleet layer of the codec service (DESIGN.md §14):
// `llm265 proxy` shards /v1/encode, /v1/decode and /v1/kv/{session}
// traffic over N backend `llm265 serve` instances by consistent hashing
// (codec requests by content/key, kv requests by session for stateful
// affinity), and makes the fleet robust
// the way the container format is robust — by assuming every component
// fails and proving the failure behavior:
//
//   - Active health checking: each backend's /healthz is probed on an
//     interval with rise/fall thresholds, so a draining or dead backend
//     leaves rotation before clients feel it (serve's healthz flips to 503
//     with draining=true the moment Drain begins).
//   - Passive ejection: a per-backend circuit breaker (closed → open →
//     half-open, breaker.go) trips after consecutive request failures
//     without waiting for the next probe tick, and re-admits the backend
//     through a single half-open probe request.
//   - Retries: connect errors, resets, mid-body truncation, 500s and
//     503-drains are retried on the next backend in ring order with capped
//     exponential backoff + full jitter, honoring Retry-After hints
//     (serve.ParseRetryAfter). Responses are fully buffered before a byte
//     reaches the client, so a retry can never follow committed output.
//   - Hedging: decode requests fire a second attempt at a p99-derived delay
//     when the first is slow; the first success wins and the loser is
//     canceled through the codec's 3-level cooperative cancellation.
//   - Shed-before-queue: when every replica for a key is ejected the proxy
//     answers 503 + Retry-After immediately, mapped into the serve error
//     taxonomy, instead of queueing onto a dead fleet.
//
// The robustness claims are driven by internal/faultinject's network layer
// (deterministic scripted resets/truncations/stalls/spurious statuses) and
// a kill/restart subprocess soak; see proxy_test.go and soak_test.go.
package proxy

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// Config sizes the proxy. Zero fields are defaulted by New.
type Config struct {
	// Backends are the base URLs of the serve instances, e.g.
	// "http://127.0.0.1:8265". At least one is required.
	Backends []string
	// VirtualNodes is the number of ring points per backend. Default 128.
	VirtualNodes int

	// ProbeInterval is the active health-check period. Default 1s.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /healthz probe. Default 500ms.
	ProbeTimeout time.Duration
	// Rise is the consecutive probe successes that readmit a backend;
	// Fall the consecutive failures that eject it. Default 2 each.
	Rise, Fall int

	// BreakerThreshold is the consecutive request failures that open a
	// backend's circuit. Default 3.
	BreakerThreshold int
	// OpenTimeout is the open→half-open cool-down. Default 2s.
	OpenTimeout time.Duration

	// MaxRetries caps re-dispatches after the first attempt. 0 selects the
	// default of 2; a negative value disables retries entirely.
	MaxRetries int
	// RetryBase/RetryCap shape the capped exponential backoff with full
	// jitter between attempts. Defaults 25ms / 1s.
	RetryBase, RetryCap time.Duration
	// RetryAfterCap bounds how long a backend's Retry-After hint is
	// honored. Default 5s.
	RetryAfterCap time.Duration
	// AttemptTimeout bounds a single upstream attempt (0 = only the
	// client's own deadline applies). A stalled backend then surfaces as a
	// retryable attempt failure instead of hanging the request.
	AttemptTimeout time.Duration

	// HedgeDelay fixes the decode hedging delay; 0 derives it from the
	// observed upstream decode p99, clamped to [HedgeMin, HedgeMax]
	// (defaults 5ms / 500ms). DisableHedge turns hedging off.
	HedgeDelay         time.Duration
	HedgeMin, HedgeMax time.Duration
	DisableHedge       bool

	// MaxBodyBytes caps request bodies (the proxy buffers them for retry
	// replay). Default 1 GiB.
	MaxBodyBytes int64

	// Transport performs upstream round trips — the injection point for
	// faultinject.FlakyTransport. nil means http.DefaultTransport.
	Transport http.RoundTripper
	// Metrics backs /metricsz. Nil allocates a private registry.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = 128
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 500 * time.Millisecond
	}
	if c.Rise <= 0 {
		c.Rise = 2
	}
	if c.Fall <= 0 {
		c.Fall = 2
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.OpenTimeout <= 0 {
		c.OpenTimeout = 2 * time.Second
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 25 * time.Millisecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = time.Second
	}
	if c.RetryAfterCap <= 0 {
		c.RetryAfterCap = 5 * time.Second
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = 5 * time.Millisecond
	}
	if c.HedgeMax <= 0 {
		c.HedgeMax = 500 * time.Millisecond
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 30
	}
	if c.Transport == nil {
		c.Transport = http.DefaultTransport
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	return c
}

// Backend state gauge levels (proxy.backend.<name>.state).
const (
	stateProbeDown = 0 // active prober ejected it
	stateOpen      = 1 // circuit open
	stateHalfOpen  = 2 // circuit probing
	stateHealthy   = 3 // in rotation
)

// backend is one upstream serve instance plus its health machinery and
// pre-resolved metric handles.
type backend struct {
	idx  int
	name string // host:port — the metrics label
	base string // scheme://host:port, no trailing slash

	br           *breaker
	probeHealthy atomic.Bool
	// prober-goroutine-local rise/fall accounting.
	consecUp, consecDown int

	state    *obs.Gauge
	latency  *obs.Histogram
	requests *obs.Counter
	failures *obs.Counter
}

// updateState re-derives the state gauge from probe + breaker state.
func (b *backend) updateState() {
	switch {
	case !b.probeHealthy.Load():
		b.state.Set(stateProbeDown)
	case b.br.snapshotState() == breakerOpen:
		b.state.Set(stateOpen)
	case b.br.snapshotState() == breakerHalfOpen:
		b.state.Set(stateHalfOpen)
	default:
		b.state.Set(stateHealthy)
	}
}

// available reports whether the routing walk may consider this backend
// (probe-healthy and circuit not hard-open; half-open admits a trial).
func (b *backend) available() bool {
	return b.probeHealthy.Load() && b.br.snapshotState() != breakerOpen
}

// proxyMetrics holds the proxy-level metric handles:
//
//	proxy.encode.requests / proxy.decode.requests           counters
//	proxy.kv.requests                                       counter
//	proxy.encode.latency_ns / proxy.decode.latency_ns       histograms
//	proxy.kv.latency_ns                                     histogram
//	proxy.upstream.decode.latency_ns                        histogram (hedge p99 source)
//	proxy.retries / proxy.hedges / proxy.hedge_wins         counters
//	proxy.shed / proxy.errors.upstream                      counters
//	proxy.ejections.active / proxy.ejections.passive        counters
//	proxy.recoveries                                        counter
//	proxy.backend.<host:port>.{state,latency_ns,requests,failures}
type proxyMetrics struct {
	encReq, decReq         *obs.Counter
	kvReq                  *obs.Counter
	encLatency, decLatency *obs.Histogram
	kvLatency              *obs.Histogram
	decUpstream            *obs.Histogram
	retries, hedges        *obs.Counter
	hedgeWins, shed        *obs.Counter
	upstreamErrors         *obs.Counter
	ejActive, ejPassive    *obs.Counter
	recoveries             *obs.Counter
}

func newProxyMetrics(reg *obs.Registry) proxyMetrics {
	return proxyMetrics{
		encReq:         reg.Counter("proxy.encode.requests"),
		decReq:         reg.Counter("proxy.decode.requests"),
		kvReq:          reg.Counter("proxy.kv.requests"),
		encLatency:     reg.Histogram("proxy.encode.latency_ns"),
		decLatency:     reg.Histogram("proxy.decode.latency_ns"),
		kvLatency:      reg.Histogram("proxy.kv.latency_ns"),
		decUpstream:    reg.Histogram("proxy.upstream.decode.latency_ns"),
		retries:        reg.Counter("proxy.retries"),
		hedges:         reg.Counter("proxy.hedges"),
		hedgeWins:      reg.Counter("proxy.hedge_wins"),
		shed:           reg.Counter("proxy.shed"),
		upstreamErrors: reg.Counter("proxy.errors.upstream"),
		ejActive:       reg.Counter("proxy.ejections.active"),
		ejPassive:      reg.Counter("proxy.ejections.passive"),
		recoveries:     reg.Counter("proxy.recoveries"),
	}
}

// Proxy is the sharding reverse proxy. Create with New, start the health
// probers with Start, mount Handler, stop with Close.
type Proxy struct {
	cfg      Config
	reg      *obs.Registry
	m        proxyMetrics
	ring     *ring
	backends []*backend
	mux      *http.ServeMux

	stopCh   chan struct{}
	stopOnce sync.Once
	probeWG  sync.WaitGroup
	started  atomic.Bool
}

// New validates cfg and builds the proxy (probers not yet running).
func New(cfg Config) (*Proxy, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("proxy: no backends configured")
	}
	p := &Proxy{
		cfg:    cfg,
		reg:    cfg.Metrics,
		m:      newProxyMetrics(cfg.Metrics),
		mux:    http.NewServeMux(),
		stopCh: make(chan struct{}),
	}
	names := make([]string, len(cfg.Backends))
	for i, raw := range cfg.Backends {
		u, err := url.Parse(raw)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("proxy: backend %q is not an absolute URL", raw)
		}
		b := &backend{
			idx:      i,
			name:     u.Host,
			base:     u.Scheme + "://" + u.Host,
			br:       newBreaker(cfg.BreakerThreshold, cfg.OpenTimeout),
			state:    cfg.Metrics.Gauge("proxy.backend." + u.Host + ".state"),
			latency:  cfg.Metrics.Histogram("proxy.backend." + u.Host + ".latency_ns"),
			requests: cfg.Metrics.Counter("proxy.backend." + u.Host + ".requests"),
			failures: cfg.Metrics.Counter("proxy.backend." + u.Host + ".failures"),
		}
		b.probeHealthy.Store(true) // optimistic until the prober says otherwise
		b.updateState()
		names[i] = u.Host
		p.backends = append(p.backends, b)
	}
	p.ring = newRing(names, cfg.VirtualNodes)
	p.mux.HandleFunc("/v1/encode", p.handleCodec)
	p.mux.HandleFunc("/v1/decode", p.handleCodec)
	p.mux.HandleFunc("/v1/kv/", p.handleKV)
	p.mux.HandleFunc("/healthz", p.handleHealthz)
	p.mux.HandleFunc("/metricsz", p.handleMetricsz)
	return p, nil
}

// Handler returns the proxy's http.Handler.
func (p *Proxy) Handler() http.Handler { return p.mux }

// Metrics returns the registry backing /metricsz.
func (p *Proxy) Metrics() *obs.Registry { return p.reg }

// Start launches the active health probers. Idempotent.
func (p *Proxy) Start() {
	if !p.started.CompareAndSwap(false, true) {
		return
	}
	for _, b := range p.backends {
		p.probeWG.Add(1)
		go p.probeLoop(b)
	}
}

// Close stops the probers and waits for them. Idempotent.
func (p *Proxy) Close() {
	p.stopOnce.Do(func() { close(p.stopCh) })
	p.probeWG.Wait()
}

// ---------------------------------------------------------------- probing

// probeLoop drives one backend's active health checks until Close.
func (p *Proxy) probeLoop(b *backend) {
	defer p.probeWG.Done()
	ticker := time.NewTicker(p.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		p.probeOnce(b)
		select {
		case <-p.stopCh:
			return
		case <-ticker.C:
		}
	}
}

// probeOnce runs one /healthz probe and applies the rise/fall thresholds.
// Any non-200 — including serve's 503 draining:true — counts as down, so a
// draining backend is ejected while its listener still answers.
func (p *Proxy) probeOnce(b *backend) {
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/healthz", nil)
	up := false
	if err == nil {
		resp, rerr := p.cfg.Transport.RoundTrip(req)
		if rerr == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			up = resp.StatusCode == http.StatusOK
		}
	}
	if up {
		b.consecUp++
		b.consecDown = 0
		if !b.probeHealthy.Load() && b.consecUp >= p.cfg.Rise {
			b.probeHealthy.Store(true)
			p.m.recoveries.Inc()
		}
	} else {
		b.consecDown++
		b.consecUp = 0
		if b.probeHealthy.Load() && b.consecDown >= p.cfg.Fall {
			b.probeHealthy.Store(false)
			p.m.ejActive.Inc()
		}
	}
	b.updateState()
}

// ---------------------------------------------------------------- routing

// pick walks key's ring sequence and returns the first backend that is
// probe-healthy, not in tried, and admitted by its breaker (a half-open
// circuit admits exactly one trial). nil means every replica is out — the
// shed case.
func (p *Proxy) pick(seq []int, tried map[int]bool) *backend {
	for _, idx := range seq {
		if tried[idx] {
			continue
		}
		b := p.backends[idx]
		if !b.probeHealthy.Load() {
			continue
		}
		if !b.br.allow() {
			continue
		}
		b.updateState()
		return b
	}
	return nil
}

// upshot is one upstream attempt's outcome, response fully buffered.
type upshot struct {
	b       *backend
	status  int
	header  http.Header
	body    []byte
	err     error // transport/read error; status et al. invalid then
	elapsed time.Duration
	hedged  bool // this was the hedge attempt
}

// retryable reports whether the outcome may be re-dispatched: transport
// errors (connect refused, resets, truncation — the response never reached
// the client, so replay is safe), 5xx backend failures and 429/503
// admission bounces. Everything else — 2xx, 206, the 4xx taxonomy, 504 —
// is the backend's answer and is forwarded.
func (o *upshot) retryable() bool {
	if o.err != nil {
		return true
	}
	switch o.status {
	case http.StatusInternalServerError, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusTooManyRequests:
		return true
	}
	return false
}

// backendFault reports whether the outcome counts against the circuit
// breaker: transport errors and 5xx are faults; 429 means the backend is
// alive but full — an admission signal, not a fault.
func (o *upshot) backendFault() bool {
	if o.err != nil {
		return true
	}
	return o.status >= 500 && o.status != http.StatusGatewayTimeout
}

// forwardOnce replays the buffered request against one backend and buffers
// the whole response. No byte reaches the client before the read completes,
// which is what makes retry-after-failure unconditionally safe.
func (p *Proxy) forwardOnce(ctx context.Context, b *backend, r *http.Request, body []byte, isDecode, hedged bool) *upshot {
	cancel := func() {}
	if p.cfg.AttemptTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, p.cfg.AttemptTimeout)
	}
	defer cancel()
	u := b.base + r.URL.Path
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, u, bytes.NewReader(body))
	if err != nil {
		return &upshot{b: b, err: err, hedged: hedged}
	}
	req.Header.Set("Content-Type", r.Header.Get("Content-Type"))
	req.ContentLength = int64(len(body))

	b.requests.Inc()
	start := time.Now()
	resp, err := p.cfg.Transport.RoundTrip(req)
	if err != nil {
		return &upshot{b: b, err: err, hedged: hedged, elapsed: time.Since(start)}
	}
	respBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	elapsed := time.Since(start)
	if err != nil {
		// Mid-body truncation: the prefix is discarded, the attempt failed.
		return &upshot{b: b, err: err, hedged: hedged, elapsed: elapsed}
	}
	b.latency.Observe(elapsed.Nanoseconds())
	if isDecode {
		p.m.decUpstream.Observe(elapsed.Nanoseconds())
	}
	return &upshot{
		b: b, status: resp.StatusCode, header: resp.Header,
		body: respBody, elapsed: elapsed, hedged: hedged,
	}
}

// settle applies an attempt outcome to the backend's breaker and counters.
// A canceled attempt — a hedge loser withdrawn by its winning sibling, or a
// client that hung up — is neutral: the half-open probe slot is released
// without judging the backend, because the backend never got to answer.
// (Deadline expiry is NOT neutral: that is the stalled-backend shape and
// counts as a fault.)
func (p *Proxy) settle(o *upshot) {
	if o.err != nil && isCanceled(o.err) {
		o.b.br.abort()
		o.b.updateState()
		return
	}
	if o.backendFault() {
		o.b.failures.Inc()
		if o.b.br.failure() {
			p.m.ejPassive.Inc()
		}
	} else if o.err == nil {
		if o.b.br.success() {
			p.m.recoveries.Inc() // half-open probe succeeded: backend rejoined
		}
	}
	o.b.updateState()
}

// hedgeDelay picks the decode hedging delay: the configured override, or
// the observed upstream decode p99 clamped to [HedgeMin, HedgeMax]. With
// too little signal (cold start) it hedges conservatively at HedgeMax.
func (p *Proxy) hedgeDelay() time.Duration {
	if p.cfg.HedgeDelay > 0 {
		return p.cfg.HedgeDelay
	}
	st := p.m.decUpstream.Stats()
	if st.Count < 16 {
		return p.cfg.HedgeMax
	}
	d := time.Duration(st.P99)
	if d < p.cfg.HedgeMin {
		d = p.cfg.HedgeMin
	}
	if d > p.cfg.HedgeMax {
		d = p.cfg.HedgeMax
	}
	return d
}

// attemptRound runs one logical attempt: the primary upstream call and, for
// decode requests, a hedged second call at the hedge delay. It returns the
// winning forwardable outcome, or nil with the failures that occurred.
func (p *Proxy) attemptRound(r *http.Request, body []byte, primary *backend, seq []int, tried map[int]bool, isDecode bool) (*upshot, []*upshot) {
	reqCtx := r.Context()
	hedge := isDecode && !p.cfg.DisableHedge && len(p.backends) > 1

	type slot struct {
		cancel context.CancelFunc
	}
	results := make(chan *upshot, 2)
	var cancels []slot
	launch := func(b *backend, hedged bool) {
		actx, cancel := context.WithCancel(reqCtx)
		cancels = append(cancels, slot{cancel})
		go func() {
			results <- p.forwardOnce(actx, b, r, body, isDecode, hedged)
		}()
	}
	defer func() {
		for _, s := range cancels {
			s.cancel()
		}
	}()

	launch(primary, false)
	outstanding := 1
	var timerC <-chan time.Time
	var timer *time.Timer
	if hedge {
		timer = time.NewTimer(p.hedgeDelay())
		defer timer.Stop()
		timerC = timer.C
	}

	var failures []*upshot
	for outstanding > 0 {
		select {
		case o := <-results:
			outstanding--
			p.settle(o)
			if o.err == nil && !o.retryable() {
				if o.hedged {
					p.m.hedgeWins.Inc()
				}
				// Cancel the loser; drain its outcome off-path so a
				// half-open probe slot can never be stranded.
				if outstanding > 0 {
					for _, s := range cancels {
						s.cancel()
					}
					go func(n int) {
						for i := 0; i < n; i++ {
							p.settle(<-results)
						}
					}(outstanding)
				}
				return o, failures
			}
			failures = append(failures, o)
		case <-timerC:
			timerC = nil
			// Fire the hedge at a different backend than the primary (and
			// anything already tried); if none is available, no hedge.
			hTried := map[int]bool{primary.idx: true}
			for k := range tried {
				hTried[k] = true
			}
			if hb := p.pick(seq, hTried); hb != nil {
				p.m.hedges.Inc()
				launch(hb, true)
				outstanding++
			}
		case <-reqCtx.Done():
			// The client is gone or its deadline blew: cancel everything and
			// drain the outcomes (settle treats them as canceled-neutral or
			// real faults as appropriate).
			for _, s := range cancels {
				s.cancel()
			}
			go func(n int) {
				for i := 0; i < n; i++ {
					p.settle(<-results)
				}
			}(outstanding)
			return nil, append(failures, &upshot{b: primary, err: reqCtx.Err()})
		}
	}
	return nil, failures
}

// requestKey derives the consistent-hash routing key: an explicit ?key=
// wins (stable tenant/session/model routing); otherwise the content hash of
// the body, so identical payloads land on the same backend and its caches.
func requestKey(r *http.Request, body []byte) string {
	if k := r.URL.Query().Get("key"); k != "" {
		return k
	}
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:8])
}

// backoff computes the capped-exponential full-jitter wait before retry
// attempt n (1-based): uniform in [0, min(RetryCap, RetryBase·2^(n-1))].
func (p *Proxy) backoff(n int) time.Duration {
	ceil := p.cfg.RetryBase << uint(n-1)
	if ceil > p.cfg.RetryCap || ceil <= 0 {
		ceil = p.cfg.RetryCap
	}
	return time.Duration(rand.Int63n(int64(ceil) + 1))
}

// handleCodec routes one /v1/encode or /v1/decode request.
func (p *Proxy) handleCodec(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		p.writeJSONError(w, http.StatusMethodNotAllowed, "proxy: POST only", "bad_request")
		return
	}
	isDecode := r.URL.Path == "/v1/decode"
	if isDecode {
		p.m.decReq.Inc()
	} else {
		p.m.encReq.Inc()
	}
	start := time.Now()
	defer func() {
		h := p.m.encLatency
		if isDecode {
			h = p.m.decLatency
		}
		h.Observe(time.Since(start).Nanoseconds())
	}()

	body, ok := p.readBody(w, r)
	if !ok {
		return
	}
	p.dispatch(w, r, body, requestKey(r, body), isDecode)
}

// handleKV routes one /v1/kv/{session} request. The routing key is the
// session path segment, so every request for a session lands on the same
// ring replica — the only backend holding that session's incremental
// encoder state. KV requests are never hedged: a hedge raced against a
// replica that does not hold the session answers 404, a legitimate
// terminal status that would beat the owner's slower 200/206 and turn a
// resident session into a phantom miss. Retries still fail over on
// transport errors and 5xx; the replacement replica answers 404 (or 409
// for positioned appends), which clients treat as a cache miss and
// rebuild — the standard cache-tier contract.
func (p *Proxy) handleKV(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPut, http.MethodGet, http.MethodDelete:
	default:
		p.writeJSONError(w, http.StatusMethodNotAllowed, "proxy: PUT, GET or DELETE only", "bad_request")
		return
	}
	session := strings.TrimPrefix(r.URL.Path, "/v1/kv/")
	if session == "" || strings.Contains(session, "/") {
		p.writeJSONError(w, http.StatusNotFound, "proxy: kv path is /v1/kv/{session}", "not_found")
		return
	}
	p.m.kvReq.Inc()
	start := time.Now()
	defer func() { p.m.kvLatency.Observe(time.Since(start).Nanoseconds()) }()

	body, ok := p.readBody(w, r)
	if !ok {
		return
	}
	p.dispatch(w, r, body, "kv/"+session, false)
}

// readBody buffers the whole request body under MaxBodyBytes, writing the
// error response itself when the read fails.
func (p *Proxy) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, p.cfg.MaxBodyBytes))
	if err != nil {
		status, class := http.StatusBadRequest, "bad_request"
		if _, ok := err.(*http.MaxBytesError); ok {
			status, class = http.StatusRequestEntityTooLarge, "too_large"
		}
		p.writeJSONError(w, status, "proxy: reading body: "+err.Error(), class)
		return nil, false
	}
	return body, true
}

// dispatch runs the shared routing loop for one buffered request: walk the
// key's ring sequence preferring untried backends, run attempt rounds
// (hedged only for decode), honor Retry-After hints between retries, and
// answer a typed 502 when every attempt is spent.
func (p *Proxy) dispatch(w http.ResponseWriter, r *http.Request, body []byte, key string, isDecode bool) {
	seq := p.ring.sequence(key)
	tried := make(map[int]bool, len(seq))
	var lastHint time.Duration
	var haveHint bool
	var lastFailure *upshot

	for attempt := 0; attempt <= p.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			p.m.retries.Inc()
			wait := p.backoff(attempt)
			if haveHint {
				wait = lastHint
				if wait > p.cfg.RetryAfterCap {
					wait = p.cfg.RetryAfterCap
				}
				haveHint = false
			}
			if !sleepCtx(r.Context(), wait) {
				p.writeJSONError(w, statusForCtx(r.Context().Err()),
					"proxy: request abandoned between retries: "+r.Context().Err().Error(),
					classForCtx(r.Context().Err()))
				return
			}
		}

		primary := p.pick(seq, tried)
		if primary == nil && len(tried) > 0 {
			// Every backend has been tried once; prefer-untried is exhausted
			// but a retry may still go back to an available backend (the
			// single-backend topology depends on this).
			primary = p.pick(seq, nil)
		}
		if primary == nil {
			// Every replica for this key is out of rotation: shed now with a
			// hint, rather than queue on a fleet that cannot answer.
			p.m.shed.Inc()
			w.Header().Set("Retry-After", shedRetryAfter(p.cfg.OpenTimeout))
			p.writeJSONError(w, http.StatusServiceUnavailable,
				"proxy: no backend available for key (all replicas ejected or open-circuit)", "rejected")
			return
		}

		win, failures := p.attemptRound(r, body, primary, seq, tried, isDecode)
		if win != nil {
			p.relay(w, win, attempt)
			return
		}
		for _, f := range failures {
			if f.err == nil || !isCanceled(f.err) {
				lastFailure = f
			}
			if f.b != nil && (f.err == nil || !isCanceled(f.err)) {
				tried[f.b.idx] = true
			}
			if f.err == nil && f.header != nil {
				if d, ok := serve.ParseRetryAfter(f.header.Get("Retry-After"), time.Now()); ok {
					lastHint, haveHint = d, true
				}
			}
		}
		if r.Context().Err() != nil {
			p.writeJSONError(w, statusForCtx(r.Context().Err()),
				"proxy: request abandoned mid-attempt: "+r.Context().Err().Error(),
				classForCtx(r.Context().Err()))
			return
		}
	}

	// Retries exhausted: a typed upstream failure, never a half-written 200.
	p.m.upstreamErrors.Inc()
	detail := "exhausted retries"
	if lastFailure != nil {
		if lastFailure.err != nil {
			detail = lastFailure.err.Error()
		} else {
			detail = fmt.Sprintf("backend %s answered %d", lastFailure.b.name, lastFailure.status)
		}
	}
	p.writeJSONError(w, http.StatusBadGateway,
		"proxy: upstream failed after "+strconv.Itoa(p.cfg.MaxRetries+1)+" attempts: "+detail, "upstream")
}

// relay copies a buffered upstream response to the client — the only place
// bytes are committed, strictly after the upstream read completed.
func (p *Proxy) relay(w http.ResponseWriter, o *upshot, attempts int) {
	for k, vs := range o.header {
		switch k {
		case "Connection", "Transfer-Encoding", "Content-Length", "Keep-Alive":
			continue
		}
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set("X-Llm265-Backend", o.b.name)
	w.Header().Set("X-Llm265-Attempts", strconv.Itoa(attempts+1))
	w.WriteHeader(o.status)
	w.Write(o.body)
}

// handleHealthz reports fleet health: 200 while at least one backend is in
// rotation, 503 + Retry-After otherwise, with per-backend detail.
func (p *Proxy) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		p.writeJSONError(w, http.StatusMethodNotAllowed, "proxy: GET only", "bad_request")
		return
	}
	type backendHealth struct {
		Name         string `json:"name"`
		ProbeHealthy bool   `json:"probe_healthy"`
		Circuit      string `json:"circuit"`
		State        int64  `json:"state"`
	}
	var detail []backendHealth
	avail := 0
	for _, b := range p.backends {
		if b.available() {
			avail++
		}
		detail = append(detail, backendHealth{
			Name:         b.name,
			ProbeHealthy: b.probeHealthy.Load(),
			Circuit:      b.br.snapshotState().String(),
			State:        b.state.Value(),
		})
	}
	status := http.StatusOK
	state := "ok"
	if avail == 0 {
		status = http.StatusServiceUnavailable
		state = "no_backends"
		w.Header().Set("Retry-After", shedRetryAfter(p.cfg.OpenTimeout))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{
		"status":    state,
		"available": avail,
		"backends":  detail,
	})
}

// handleMetricsz serves the registry snapshot.
func (p *Proxy) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		p.writeJSONError(w, http.StatusMethodNotAllowed, "proxy: GET only", "bad_request")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	p.reg.WriteJSON(w)
}

// writeJSONError mirrors serve's error envelope so proxy-originated errors
// and relayed backend errors look the same to clients.
func (p *Proxy) writeJSONError(w http.ResponseWriter, status int, msg, class string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg, "class": class})
}

// ------------------------------------------------------------------ small helpers

// sleepCtx sleeps d or until ctx dies; false means ctx died first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

func statusForCtx(err error) int {
	if err == context.DeadlineExceeded {
		return http.StatusGatewayTimeout
	}
	return serve.StatusClientClosedRequest
}

func classForCtx(err error) string {
	if err == context.DeadlineExceeded {
		return "deadline_exceeded"
	}
	return "canceled"
}

// isCanceled reports a cancellation-shaped attempt error. Deliberately not
// DeadlineExceeded: an AttemptTimeout expiry means the backend stalled and
// must count as a fault, while Canceled (with the request context alive)
// means the proxy itself withdrew the attempt — a hedge loser.
func isCanceled(err error) bool {
	return errors.Is(err, context.Canceled)
}

// shedRetryAfter renders the Retry-After hint for shed responses: the
// breaker cool-down rounded up to whole seconds, at least 1.
func shedRetryAfter(openTimeout time.Duration) string {
	secs := int(openTimeout / time.Second)
	if openTimeout%time.Second != 0 || secs < 1 {
		secs++
	}
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}
