package proxy

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The fleet soak: three REAL `llm265 serve` subprocesses behind an
// in-process proxy, hammered by concurrent clients while one backend is
// SIGKILLed mid-traffic and restarted a couple of seconds later. The gate
// (run under -race by `make proxy-test`):
//
//   - zero corrupt responses — every 200 body sha256-matches its reference;
//   - every non-200 is a typed-taxonomy JSON error on an expected status;
//   - the killed backend rejoins on its own: active probes readmit it, the
//     circuit closes through half-open, and traffic for its keys returns,
//     with no operator action anywhere.

// buildLLM265 compiles the real binary once per test run.
func buildLLM265(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "llm265")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/llm265")
	cmd.Dir = filepath.Join("..", "..")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building llm265: %v\n%s", err, out)
	}
	return bin
}

// freePort reserves a loopback port and releases it for the subprocess.
// (Small race window; acceptable for a local test harness.)
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

// spawnServe starts one llm265 serve subprocess and waits for /healthz.
func spawnServe(t *testing.T, bin string, port int) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, "serve",
		"-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-max-inflight", "4")
	cmd.Stdout = io.Discard
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting serve on :%d: %v", port, err)
	}
	base := fmt.Sprintf("http://127.0.0.1:%d", port)
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	cmd.Process.Kill()
	cmd.Wait()
	t.Fatalf("serve on :%d never became healthy", port)
	return nil
}

func TestProxySoakKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess soak skipped in -short")
	}
	bin := buildLLM265(t)

	ports := []int{freePort(t), freePort(t), freePort(t)}
	urls := make([]string, len(ports))
	procs := make([]*exec.Cmd, len(ports))
	for i, port := range ports {
		urls[i] = fmt.Sprintf("http://127.0.0.1:%d", port)
		procs[i] = spawnServe(t, bin, port)
	}
	defer func() {
		for _, c := range procs {
			if c != nil && c.Process != nil {
				c.Process.Kill()
				c.Wait()
			}
		}
	}()

	p, err := New(Config{
		Backends:         urls,
		ProbeInterval:    100 * time.Millisecond,
		ProbeTimeout:     300 * time.Millisecond,
		Rise:             2,
		Fall:             2,
		BreakerThreshold: 2,
		OpenTimeout:      300 * time.Millisecond,
		MaxRetries:       2,
		RetryBase:        5 * time.Millisecond,
		RetryCap:         50 * time.Millisecond,
		HedgeDelay:       50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Close()
	front := httptest.NewServer(p.Handler())
	defer front.Close()

	// Workload: golden decodes (reference = checked-in .planes) plus one
	// encode whose reference bytes come from a live backend pre-chaos.
	type job struct {
		name    string
		path    string
		body    []byte
		wantSHA [32]byte
	}
	var jobs []job
	for name, pair := range goldenVectors(t) {
		jobs = append(jobs, job{
			name: "decode-" + name, path: "/v1/decode",
			body: pair[0], wantSHA: sha256.Sum256(pair[1]),
		})
	}
	encPayload := encodeBody(23, 1, 48, 48)
	const encQuery = "/v1/encode?layers=1&rows=48&cols=48&qp=30"
	st, refEnc, _ := post(t, urls[0]+encQuery, encPayload)
	if st != http.StatusOK {
		t.Fatalf("pre-chaos reference encode: status %d", st)
	}
	jobs = append(jobs, job{name: "encode", path: encQuery, body: encPayload, wantSHA: sha256.Sum256(refEnc)})

	// Statuses the typed taxonomy allows while a third of the fleet is
	// dying: admission bounces, sheds, exhausted retries, blown deadlines.
	okError := map[int]bool{
		http.StatusTooManyRequests:    true,
		http.StatusBadGateway:         true,
		http.StatusServiceUnavailable: true,
		http.StatusGatewayTimeout:     true,
	}

	var (
		stop     atomic.Bool
		corrupt  atomic.Int64
		oks      atomic.Int64
		errs     atomic.Int64
		mu       sync.Mutex
		statuses = map[int]int{}
		badBody  []string
	)
	const clients = 8
	var wg sync.WaitGroup
	client := &http.Client{Timeout: 10 * time.Second}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				j := jobs[(c+i)%len(jobs)]
				resp, err := client.Post(front.URL+j.path, "application/octet-stream", bytes.NewReader(j.body))
				if err != nil {
					// Client-side transport errors to the proxy itself would be
					// harness bugs; record loudly.
					mu.Lock()
					badBody = append(badBody, fmt.Sprintf("%s: client error %v", j.name, err))
					mu.Unlock()
					continue
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				mu.Lock()
				statuses[resp.StatusCode]++
				mu.Unlock()
				switch {
				case rerr != nil:
					corrupt.Add(1)
				case resp.StatusCode == http.StatusOK:
					oks.Add(1)
					if sha256.Sum256(body) != j.wantSHA {
						corrupt.Add(1)
						mu.Lock()
						badBody = append(badBody, fmt.Sprintf("%s: 200 with wrong bytes (%d)", j.name, len(body)))
						mu.Unlock()
					}
				case okError[resp.StatusCode]:
					errs.Add(1)
					var eb struct {
						Class string `json:"class"`
					}
					if err := json.Unmarshal(body, &eb); err != nil || eb.Class == "" {
						corrupt.Add(1)
						mu.Lock()
						badBody = append(badBody, fmt.Sprintf("%s: untyped %d body %.120q", j.name, resp.StatusCode, body))
						mu.Unlock()
					}
				default:
					corrupt.Add(1)
					mu.Lock()
					badBody = append(badBody, fmt.Sprintf("%s: unexpected status %d %.120q", j.name, resp.StatusCode, body))
					mu.Unlock()
				}
			}
		}(c)
	}

	// Let traffic establish, then murder backend 1 mid-flight.
	time.Sleep(1 * time.Second)
	victim := 1
	t.Logf("soak: SIGKILL backend %s", urls[victim])
	procs[victim].Process.Kill()
	procs[victim].Wait()
	procs[victim] = nil

	// Fleet of two absorbs the traffic for a while, then the victim returns
	// on the same port.
	time.Sleep(2 * time.Second)
	t.Logf("soak: restarting backend %s", urls[victim])
	procs[victim] = spawnServe(t, bin, ports[victim])

	// Give probes + half-open recovery time to readmit it under load.
	time.Sleep(2 * time.Second)
	stop.Store(true)
	wg.Wait()

	if corrupt.Load() != 0 {
		mu.Lock()
		defer mu.Unlock()
		max := len(badBody)
		if max > 10 {
			max = 10
		}
		t.Fatalf("%d corrupt/unexpected responses; first %d:\n%s",
			corrupt.Load(), max, joinLines(badBody[:max]))
	}
	if oks.Load() == 0 {
		t.Fatal("soak produced zero successful responses")
	}
	t.Logf("soak: %d oks, %d typed errors, statuses %v", oks.Load(), errs.Load(), statuses)

	// Rejoin gate: within a few seconds the proxy must consider the whole
	// fleet available again, and a request keyed to the victim must be
	// served by the victim.
	victimHost := fmt.Sprintf("127.0.0.1:%d", ports[victim])
	deadline := time.Now().Add(10 * time.Second)
	rejoined := false
	for time.Now().Before(deadline) {
		if p.backends[victim].available() {
			rejoined = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !rejoined {
		t.Fatalf("backend %s never rejoined the rotation after restart", victimHost)
	}

	// Find a key the victim owns and prove it answers it end to end.
	var key string
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("rejoin-%d", i)
		if p.ring.owner(k) == victim {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no key owned by the victim backend in 10000 tries")
	}
	deadline = time.Now().Add(5 * time.Second)
	served := false
	for time.Now().Before(deadline) {
		status, _, hdr := post(t, front.URL+"/v1/decode?key="+key, jobs[0].body)
		if status == http.StatusOK && hdr.Get("X-Llm265-Backend") == victimHost {
			served = true
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !served {
		t.Fatalf("restarted backend %s never served its keys again", victimHost)
	}

	c := counters(t, front.URL)
	if c["proxy.ejections.active"] < 1 && c["proxy.ejections.passive"] < 1 {
		t.Error("killing a backend registered no ejection (active or passive)")
	}
	if c["proxy.recoveries"] < 1 {
		t.Error("restart registered no recovery")
	}
}

func joinLines(lines []string) string {
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}
