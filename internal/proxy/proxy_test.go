package proxy

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/serve"
)

// testBackend is one in-process serve instance behind real HTTP, with a
// switchable /healthz so prober tests can take it "down" without port
// juggling.
type testBackend struct {
	srv         *serve.Server
	ts          *httptest.Server
	host        string // host:port — what the proxy uses as the backend name
	healthzDown atomic.Bool
}

func newTestBackends(t testing.TB, n int) []*testBackend {
	return newTestBackendsCfg(t, n, func(int) serve.Config { return serve.Config{MaxInflight: 4} })
}

// newTestBackendsCfg is newTestBackends with a per-backend serve config —
// kv tests use it to give each instance its own session table.
func newTestBackendsCfg(t testing.TB, n int, cfgFor func(i int) serve.Config) []*testBackend {
	t.Helper()
	out := make([]*testBackend, n)
	for i := range out {
		b := &testBackend{srv: serve.New(cfgFor(i))}
		inner := b.srv.Handler()
		b.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/healthz" && b.healthzDown.Load() {
				http.Error(w, `{"status":"forced-down"}`, http.StatusServiceUnavailable)
				return
			}
			inner.ServeHTTP(w, r)
		}))
		t.Cleanup(b.ts.Close)
		b.host = strings.TrimPrefix(b.ts.URL, "http://")
		out[i] = b
	}
	return out
}

// newTestProxy mounts a proxy over the backends with fast test timings; mod
// may tweak the config before New. Probers are NOT started — tests that
// exercise active probing call p.Start() themselves.
func newTestProxy(t testing.TB, backends []*testBackend, ft *faultinject.FlakyTransport, mod func(*Config)) (*Proxy, string) {
	t.Helper()
	urls := make([]string, len(backends))
	for i, b := range backends {
		urls[i] = b.ts.URL
	}
	cfg := Config{
		Backends:   urls,
		MaxRetries: 2,
		RetryBase:  time.Millisecond,
		RetryCap:   5 * time.Millisecond,
	}
	if ft != nil {
		cfg.Transport = ft
	}
	if mod != nil {
		mod(&cfg)
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(p.Close)
	ts := httptest.NewServer(p.Handler())
	t.Cleanup(ts.Close)
	return p, ts.URL
}

func post(t testing.TB, url string, body []byte) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response from %s: %v", url, err)
	}
	return resp.StatusCode, out, resp.Header
}

// counters fetches /metricsz and returns counters and gauges merged —
// the map the sweep assertions diff.
func counters(t testing.TB, base string) map[string]int64 {
	t.Helper()
	resp, err := http.Get(base + "/metricsz")
	if err != nil {
		t.Fatalf("GET /metricsz: %v", err)
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decoding /metricsz: %v", err)
	}
	out := make(map[string]int64, len(snap.Counters)+len(snap.Gauges))
	for k, v := range snap.Counters {
		out[k] = v
	}
	for k, v := range snap.Gauges {
		out[k] = v
	}
	return out
}

// goldenVectors loads the conformance corpus: (stream, wantPlanes) pairs.
func goldenVectors(t testing.TB) map[string][2][]byte {
	t.Helper()
	dir := filepath.Join("..", "codec", "testdata", "golden")
	streams, err := filepath.Glob(filepath.Join(dir, "*.l265"))
	if err != nil || len(streams) == 0 {
		t.Fatalf("no golden vectors under %s (err=%v)", dir, err)
	}
	out := make(map[string][2][]byte, len(streams))
	for _, sp := range streams {
		name := strings.TrimSuffix(filepath.Base(sp), ".l265")
		stream, err := os.ReadFile(sp)
		if err != nil {
			t.Fatal(err)
		}
		planes, err := os.ReadFile(filepath.Join(dir, name+".planes"))
		if err != nil {
			t.Fatal(err)
		}
		out[name] = [2][]byte{stream, planes}
	}
	return out
}

// encodeBody builds a deterministic float32 LE payload of layers×rows×cols.
func encodeBody(seed int64, layers, rows, cols int) []byte {
	rng := rand.New(rand.NewSource(seed))
	buf := make([]byte, 0, layers*rows*cols*4)
	for i := 0; i < layers*rows*cols; i++ {
		u := math.Float32bits(rng.Float32()*2 - 1)
		buf = append(buf, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
	}
	return buf
}

// TestProxyEquivalenceMatrix is the satellite-4 gate: every golden vector
// decodes byte-identically through 1-, 2- and 3-backend topologies, and an
// encode through the proxy matches the same encode against a backend
// directly. The proxy must be invisible to payloads.
func TestProxyEquivalenceMatrix(t *testing.T) {
	golden := goldenVectors(t)
	enc := encodeBody(7, 2, 64, 64)
	const encQuery = "/v1/encode?layers=2&rows=64&cols=64&qp=30"

	// Reference encode against a lone backend, no proxy.
	ref := newTestBackends(t, 1)[0]
	refStatus, refEnc, _ := post(t, ref.ts.URL+encQuery, enc)
	if refStatus != http.StatusOK {
		t.Fatalf("direct encode status %d: %s", refStatus, refEnc)
	}

	for _, n := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("backends=%d", n), func(t *testing.T) {
			backends := newTestBackends(t, n)
			_, base := newTestProxy(t, backends, nil, nil)

			for name, pair := range golden {
				status, got, hdr := post(t, base+"/v1/decode", pair[0])
				if status != http.StatusOK {
					t.Fatalf("%s: decode via proxy status %d: %s", name, status, got)
				}
				if !bytes.Equal(got, pair[1]) {
					t.Fatalf("%s: proxy decode differs from golden .planes (%d vs %d bytes)",
						name, len(got), len(pair[1]))
				}
				if hdr.Get("X-Llm265-Backend") == "" {
					t.Fatalf("%s: response missing X-Llm265-Backend", name)
				}
			}

			status, got, _ := post(t, base+encQuery, enc)
			if status != http.StatusOK {
				t.Fatalf("encode via proxy status %d: %s", status, got)
			}
			if !bytes.Equal(got, refEnc) {
				t.Fatalf("proxy encode differs from direct encode (%d vs %d bytes)", len(got), len(refEnc))
			}
		})
	}
}

// TestProxyConsistentRouting: the same explicit key lands on the same
// backend every time, and different keys spread across the fleet.
func TestProxyConsistentRouting(t *testing.T) {
	backends := newTestBackends(t, 3)
	_, base := newTestProxy(t, backends, nil, nil)
	golden := goldenVectors(t)
	var stream []byte
	for _, pair := range golden {
		stream = pair[0]
		break
	}

	hosts := map[string]bool{}
	var pinned string
	for i := 0; i < 6; i++ {
		_, _, hdr := post(t, base+"/v1/decode?key=tenant-42", stream)
		h := hdr.Get("X-Llm265-Backend")
		if pinned == "" {
			pinned = h
		} else if h != pinned {
			t.Fatalf("key=tenant-42 moved %s → %s with a stable fleet", pinned, h)
		}
	}
	for i := 0; i < 32; i++ {
		_, _, hdr := post(t, base+fmt.Sprintf("/v1/decode?key=spread-%d", i), stream)
		hosts[hdr.Get("X-Llm265-Backend")] = true
	}
	if len(hosts) < 2 {
		t.Fatalf("32 distinct keys all landed on one backend: %v", hosts)
	}
}
