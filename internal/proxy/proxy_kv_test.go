package proxy

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/kv"
	"repro/internal/serve"
)

// newKVBackends builds n serve instances, each with its own session table —
// the stateful topology the proxy's session affinity exists for.
func newKVBackends(t testing.TB, n int) []*testBackend {
	t.Helper()
	return newTestBackendsCfg(t, n, func(int) serve.Config {
		return serve.Config{
			MaxInflight: 4,
			KV:          kv.New(kv.Config{FlushRows: 8, QP: 12, Workers: 1}),
		}
	})
}

func kvDo(t testing.TB, method, url string, body []byte) (int, []byte, http.Header) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s %s response: %v", method, url, err)
	}
	return resp.StatusCode, out, resp.Header
}

// TestProxyKVSessionAffinity: every request for a session routes to one
// stable backend (the session path segment is the consistent-hash key), the
// session is resident on exactly that backend, reads through the proxy are
// byte-identical to reads against the owner directly, DELETE drops it, and
// no kv request is ever hedged — even with a hedge delay of one nanosecond.
func TestProxyKVSessionAffinity(t *testing.T) {
	backends := newKVBackends(t, 3)
	_, base := newTestProxy(t, backends, nil, func(c *Config) {
		c.HedgeDelay = time.Nanosecond // would fire instantly if kv hedged
	})

	const dim, rows = 8, 20
	sessions := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	owner := make(map[string]*testBackend, len(sessions))
	for i, s := range sessions {
		body := encodeBody(int64(100+i), 1, rows, dim)
		status, resp, hdr := kvDo(t, "PUT", base+"/v1/kv/"+s+"?dim=8&at=0", body)
		if status != http.StatusOK {
			t.Fatalf("PUT %s -> %d (%.200s)", s, status, resp)
		}
		host := hdr.Get("X-Llm265-Backend")
		for _, b := range backends {
			if b.host == host {
				owner[s] = b
			}
		}
		if owner[s] == nil {
			t.Fatalf("PUT %s answered by unknown backend %q", s, host)
		}
	}

	for _, s := range sessions {
		// The session lives on exactly the backend that answered the PUT.
		resident := 0
		for _, b := range backends {
			if _, err := b.srv.KV().Stat(s); err == nil {
				resident++
				if b != owner[s] {
					t.Fatalf("session %s resident on %s, but proxy routed to %s",
						s, b.host, owner[s].host)
				}
			} else if !errors.Is(err, kv.ErrNotFound) {
				t.Fatalf("Stat(%s) on %s: %v", s, b.host, err)
			}
		}
		if resident != 1 {
			t.Fatalf("session %s resident on %d backends, want exactly 1", s, resident)
		}

		// Repeated reads stay on the owner and match a direct read bit for bit.
		_, direct, _ := kvDo(t, "GET", owner[s].ts.URL+"/v1/kv/"+s, nil)
		for i := 0; i < 3; i++ {
			status, got, hdr := kvDo(t, "GET", base+"/v1/kv/"+s, nil)
			if status != http.StatusOK {
				t.Fatalf("GET %s -> %d (%.200s)", s, status, got)
			}
			if h := hdr.Get("X-Llm265-Backend"); h != owner[s].host {
				t.Fatalf("GET %s routed to %s, owner is %s", s, h, owner[s].host)
			}
			if want := rows * dim * 4; len(got) != want {
				t.Fatalf("GET %s: %d bytes, want %d", s, len(got), want)
			}
			if !bytes.Equal(got, direct) {
				t.Fatalf("GET %s through proxy differs from direct read", s)
			}
		}
	}

	// DELETE through the proxy reaches the owner and the session is gone.
	victim := sessions[0]
	if status, resp, _ := kvDo(t, "DELETE", base+"/v1/kv/"+victim, nil); status != http.StatusNoContent {
		t.Fatalf("DELETE %s -> %d (%.200s)", victim, status, resp)
	}
	if status, _, _ := kvDo(t, "GET", base+"/v1/kv/"+victim, nil); status != http.StatusNotFound {
		t.Fatalf("GET after DELETE -> %d, want 404", status)
	}

	if c := counters(t, base); c["proxy.hedges"] != 0 {
		t.Fatalf("kv traffic hedged %d times; kv must never hedge", c["proxy.hedges"])
	}
}

// TestProxyKVRangeHeaders: ranged partial reads relay the kv window headers
// untouched — the proxy must be invisible to the 206 resume protocol.
func TestProxyKVRangeHeaders(t *testing.T) {
	backends := newKVBackends(t, 2)
	_, base := newTestProxy(t, backends, nil, nil)

	const dim, rows = 8, 20
	body := encodeBody(7, 1, rows, dim)
	if status, resp, _ := kvDo(t, "PUT", base+"/v1/kv/win?dim=8&at=0", body); status != http.StatusOK {
		t.Fatalf("PUT -> %d (%.200s)", status, resp)
	}
	status, got, hdr := kvDo(t, "GET", base+"/v1/kv/win?range=4-12", nil)
	if status != http.StatusOK {
		t.Fatalf("ranged GET -> %d (%.200s)", status, got)
	}
	if hdr.Get("X-Llm265-Kv-From") != "4" || hdr.Get("X-Llm265-Kv-To") != "12" {
		t.Fatalf("window headers From=%q To=%q, want 4/12",
			hdr.Get("X-Llm265-Kv-From"), hdr.Get("X-Llm265-Kv-To"))
	}
	if len(got) != 8*dim*4 {
		t.Fatalf("ranged GET: %d bytes, want %d", len(got), 8*dim*4)
	}
	if status, _, _ := kvDo(t, "GET", base+"/v1/kv/win?range=banana", nil); status != http.StatusBadRequest {
		t.Fatalf("malformed range -> %d, want 400", status)
	}
}

// TestProxyKVFailoverIsCacheMiss: when the session owner dies, retries fail
// over to the next ring replica, which does not hold the session — the
// client sees an honest 404 cache miss, never a hang or a 502, and rebuilds.
func TestProxyKVFailoverIsCacheMiss(t *testing.T) {
	backends := newKVBackends(t, 2)
	_, base := newTestProxy(t, backends, nil, nil)

	const dim, rows = 8, 8
	body := encodeBody(9, 1, rows, dim)
	status, resp, hdr := kvDo(t, "PUT", base+"/v1/kv/doomed?dim=8&at=0", body)
	if status != http.StatusOK {
		t.Fatalf("PUT -> %d (%.200s)", status, resp)
	}
	ownerHost := hdr.Get("X-Llm265-Backend")
	var survivor *testBackend
	for _, b := range backends {
		if b.host == ownerHost {
			b.ts.Close() // connection refused from here on
		} else {
			survivor = b
		}
	}

	status, got, hdr := kvDo(t, "GET", base+"/v1/kv/doomed", nil)
	if status != http.StatusNotFound {
		t.Fatalf("GET after owner death -> %d (%.200s), want 404", status, got)
	}
	if h := hdr.Get("X-Llm265-Backend"); h != survivor.host {
		t.Fatalf("failover answered by %q, want survivor %s", h, survivor.host)
	}
}

// TestProxyKVValidation: the proxy rejects what serve would reject, before
// spending an upstream attempt.
func TestProxyKVValidation(t *testing.T) {
	backends := newKVBackends(t, 1)
	_, base := newTestProxy(t, backends, nil, nil)

	for _, tc := range []struct {
		method, path string
		want         int
	}{
		{"POST", "/v1/kv/x", http.StatusMethodNotAllowed},
		{"PATCH", "/v1/kv/x", http.StatusMethodNotAllowed},
		{"PUT", "/v1/kv/", http.StatusNotFound},
		{"GET", "/v1/kv/a/b", http.StatusNotFound},
	} {
		if status, resp, _ := kvDo(t, tc.method, base+tc.path, nil); status != tc.want {
			t.Fatalf("%s %s -> %d (%.200s), want %d", tc.method, tc.path, status, resp, tc.want)
		}
	}
}
