package proxy

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit: closed (traffic flows,
// consecutive failures counted), open (traffic blocked until a cool-down
// elapses), half-open (exactly one probe request is allowed through; its
// outcome decides between closed and open).
type breakerState int32

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	default:
		return "half-open"
	}
}

// breaker is the per-backend passive-ejection circuit. The active prober
// (health.go) catches backends that are down; the breaker catches backends
// that are up but failing — draining, crash-looping, or serving resets —
// and ejects them after threshold consecutive failures without waiting for
// the next probe tick.
//
// now is injectable so tests can drive the open→half-open transition
// without sleeping.
type breaker struct {
	mu          sync.Mutex
	threshold   int
	openTimeout time.Duration
	now         func() time.Time

	state       breakerState
	consecFails int
	openedAt    time.Time
	probing     bool // a half-open trial is in flight
}

func newBreaker(threshold int, openTimeout time.Duration) *breaker {
	return &breaker{
		threshold:   threshold,
		openTimeout: openTimeout,
		now:         time.Now,
	}
}

// allow reports whether a request may be sent to this backend right now.
// In the open state it flips to half-open once the cool-down has elapsed
// and admits the caller as the single probe; in half-open it admits nothing
// while the probe is in flight. Every true return must be followed by
// exactly one success or failure call.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.openTimeout {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// success records a completed request. A half-open probe success closes the
// circuit; closed successes reset the consecutive-failure count.
// Returns true when the circuit transitioned to closed from a non-closed
// state (the "backend rejoined" event the metrics record).
func (b *breaker) success() (closedNow bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	closedNow = b.state != breakerClosed
	b.state = breakerClosed
	b.consecFails = 0
	b.probing = false
	return closedNow
}

// failure records a failed request. A half-open probe failure re-opens the
// circuit and re-arms the cool-down; threshold consecutive closed-state
// failures open it. Returns true when the circuit transitioned to open
// (the ejection event).
func (b *breaker) failure() (openedNow bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = b.now()
		return true
	case breakerClosed:
		b.consecFails++
		if b.consecFails >= b.threshold {
			b.state = breakerOpen
			b.openedAt = b.now()
			return true
		}
	}
	return false
}

// abort releases an admitted trial without judging the backend — the
// canceled-hedge-loser case. Without it a half-open probe slot canceled by
// a winning sibling would stay occupied forever and wedge the circuit.
func (b *breaker) abort() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// snapshotState reports the current state for gauges and /healthz.
func (b *breaker) snapshotState() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
