package dct

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randBlock(rng *rand.Rand, n int, amp int32) []int32 {
	b := make([]int32, n*n)
	for i := range b {
		b[i] = rng.Int31n(2*amp+1) - amp
	}
	return b
}

func TestForwardInverseLossless(t *testing.T) {
	// Without quantization the integer transform must reconstruct residuals
	// within a tiny fixed-point error.
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{4, 8, 16, 32} {
		tr := NewDCT(n)
		for trial := 0; trial < 20; trial++ {
			res := randBlock(rng, n, 255)
			coef := make([]int32, n*n)
			rec := make([]int32, n*n)
			tr.Forward(coef, res)
			tr.Inverse(rec, coef)
			for i := range res {
				if d := rec[i] - res[i]; d < -2 || d > 2 {
					t.Fatalf("n=%d trial=%d idx=%d: rec %d want %d", n, trial, i, rec[i], res[i])
				}
			}
		}
	}
}

func TestDST4RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := NewDST4()
	for trial := 0; trial < 50; trial++ {
		res := randBlock(rng, 4, 255)
		coef := make([]int32, 16)
		rec := make([]int32, 16)
		tr.Forward(coef, res)
		tr.Inverse(rec, coef)
		for i := range res {
			if d := rec[i] - res[i]; d < -2 || d > 2 {
				t.Fatalf("idx=%d: rec %d want %d", i, rec[i], res[i])
			}
		}
	}
}

func TestDCBlockConcentratesEnergy(t *testing.T) {
	// A constant block must transform to a single DC coefficient.
	for _, n := range []int{4, 8, 16, 32} {
		tr := NewDCT(n)
		res := make([]int32, n*n)
		for i := range res {
			res[i] = 100
		}
		coef := make([]int32, n*n)
		tr.Forward(coef, res)
		// DC of orthonormal DCT of constant c is c·n; coefBits scale is 64.
		wantDC := int32(100 * n * 64)
		if d := coef[0] - wantDC; d < -n64() || d > n64() {
			t.Errorf("n=%d: DC=%d want ~%d", n, coef[0], wantDC)
		}
		for i := 1; i < n*n; i++ {
			if coef[i] < -64 || coef[i] > 64 {
				t.Errorf("n=%d: AC[%d]=%d, want ~0", n, i, coef[i])
			}
		}
	}
}

func n64() int32 { return 512 }

func TestQuantizeDequantizeError(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 8
	tr := NewDCT(n)
	for _, qp := range []int{4, 16, 28, 40} {
		step := Qstep(qp)
		res := randBlock(rng, n, 200)
		coef := make([]int32, n*n)
		tr.Forward(coef, res)
		lev := make([]int32, n*n)
		Quantize(lev, coef, qp)
		deq := make([]int32, n*n)
		Dequantize(deq, lev, qp)
		for i := range coef {
			err := math.Abs(float64(deq[i]-coef[i])) / 64 // orthonormal domain
			// Dead-zone quantizer error is bounded by ~(2/3)·step plus
			// rounding slack.
			if err > step*0.70+0.55 {
				t.Fatalf("qp=%d idx=%d: err %.3f > bound (step %.3f)", qp, i, err, step)
			}
		}
	}
}

func TestQstepDoublesEverySixQP(t *testing.T) {
	for qp := 0; qp+6 <= MaxQP; qp++ {
		r := Qstep(qp+6) / Qstep(qp)
		if math.Abs(r-2) > 1e-9 {
			t.Fatalf("Qstep(%d+6)/Qstep(%d) = %f, want 2", qp, qp, r)
		}
	}
	if math.Abs(Qstep(4)-1) > 1e-12 {
		t.Fatalf("Qstep(4)=%f, want 1", Qstep(4))
	}
	if Qstep(-5) != Qstep(0) || Qstep(99) != Qstep(MaxQP) {
		t.Fatal("Qstep clamping broken")
	}
}

func TestHigherQPLargerError(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 16
	tr := NewDCT(n)
	res := randBlock(rng, n, 255)
	mse := func(qp int) float64 {
		coef := make([]int32, n*n)
		tr.Forward(coef, res)
		Quantize(coef, coef, qp)
		Dequantize(coef, coef, qp)
		rec := make([]int32, n*n)
		tr.Inverse(rec, coef)
		var s float64
		for i := range res {
			d := float64(rec[i] - res[i])
			s += d * d
		}
		return s / float64(n*n)
	}
	if !(mse(10) < mse(25) && mse(25) < mse(40)) {
		t.Fatalf("MSE not monotone in QP: %f %f %f", mse(10), mse(25), mse(40))
	}
}

func TestRoundTripQuantizedProperty(t *testing.T) {
	// Property: for any residual block and QP, reconstruction error per
	// sample is bounded by a constant times Qstep.
	f := func(seed int64, qp8 uint8) bool {
		qp := int(qp8) % 40
		rng := rand.New(rand.NewSource(seed))
		n := []int{4, 8, 16}[rng.Intn(3)]
		tr := NewDCT(n)
		res := randBlock(rng, n, 255)
		coef := make([]int32, n*n)
		tr.Forward(coef, res)
		Quantize(coef, coef, qp)
		Dequantize(coef, coef, qp)
		rec := make([]int32, n*n)
		tr.Inverse(rec, coef)
		// Error energy bound: each of n² coefficients errs by < step, so
		// per-sample |err| ≤ n·step is extremely loose; check RMS ≤ step.
		var s float64
		for i := range res {
			d := float64(rec[i] - res[i])
			s += d * d
		}
		rms := math.Sqrt(s / float64(n*n))
		return rms <= Qstep(qp)*0.75+1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestForwardFloatOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 8
	src := make([]float64, n*n)
	var energy float64
	for i := range src {
		src[i] = rng.NormFloat64()
		energy += src[i] * src[i]
	}
	coef := ForwardFloat(src, n)
	var cenergy float64
	for _, c := range coef {
		cenergy += c * c
	}
	if math.Abs(energy-cenergy) > 1e-9*energy {
		t.Fatalf("energy not preserved: %f vs %f", energy, cenergy)
	}
	rec := InverseFloat(coef, n)
	for i := range src {
		if math.Abs(rec[i]-src[i]) > 1e-9 {
			t.Fatalf("idx %d: %f vs %f", i, rec[i], src[i])
		}
	}
}

func TestDCTSpreadsOutliers(t *testing.T) {
	// The Fig. 3 mechanism: a single large outlier in the spatial domain is
	// amortized across all transform coefficients, so the coefficient-domain
	// peak is much smaller than the input peak.
	n := 8
	src := make([]float64, n*n)
	src[27] = 128 // isolated outlier
	coef := ForwardFloat(src, n)
	var peak float64
	for _, c := range coef {
		if math.Abs(c) > peak {
			peak = math.Abs(c)
		}
	}
	// Basis entries are at most √(2/n), so the peak coefficient of a
	// 128-impulse is at most 128·(2/n) = 32 for n=8 — a 4× amortization.
	if peak > 128.0*2/float64(n)+1e-9 {
		t.Fatalf("outlier not amortized: coef peak %.2f", peak)
	}
	if peak < 128.0/float64(n) {
		t.Fatalf("suspiciously small peak %.2f; transform likely wrong", peak)
	}
}

func BenchmarkForward8(b *testing.B)  { benchForward(b, 8) }
func BenchmarkForward32(b *testing.B) { benchForward(b, 32) }

func benchForward(b *testing.B, n int) {
	rng := rand.New(rand.NewSource(9))
	tr := NewDCT(n)
	res := randBlock(rng, n, 255)
	coef := make([]int32, n*n)
	b.SetBytes(int64(n * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Forward(coef, res)
	}
}
