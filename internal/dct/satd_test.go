package dct

import (
	"math/rand"
	"testing"
)

// hadamardMatrix builds the natural-order n×n Hadamard matrix by Sylvester
// doubling. The butterfly network in satd4/satd8 produces the same transform
// up to a row permutation, and the SATD sum of absolute coefficients is
// permutation-invariant, so this is a valid independent reference.
func hadamardMatrix(n int) [][]int64 {
	h := [][]int64{{1}}
	for len(h) < n {
		m := len(h)
		nh := make([][]int64, 2*m)
		for i := range nh {
			nh[i] = make([]int64, 2*m)
		}
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				nh[i][j] = h[i][j]
				nh[i][j+m] = h[i][j]
				nh[i+m][j] = h[i][j]
				nh[i+m][j+m] = -h[i][j]
			}
		}
		h = nh
	}
	return h
}

// refSATD computes H·M·Hᵀ by plain matrix multiplication and applies the
// same normalization as the production code.
func refSATD(res []int32, n int) int64 {
	h := hadamardMatrix(n)
	// t = H · M
	t := make([][]int64, n)
	for i := range t {
		t[i] = make([]int64, n)
		for j := 0; j < n; j++ {
			var s int64
			for k := 0; k < n; k++ {
				s += h[i][k] * int64(res[k*n+j])
			}
			t[i][j] = s
		}
	}
	// sum |t · Hᵀ|
	var sum int64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s int64
			for k := 0; k < n; k++ {
				s += t[i][k] * h[j][k]
			}
			if s < 0 {
				s = -s
			}
			sum += s
		}
	}
	switch n {
	case 4:
		return (sum + 1) >> 1
	default: // 8
		return (sum + 2) >> 2
	}
}

func TestSATDZeroResidual(t *testing.T) {
	for _, n := range []int{4, 8, 16, 32} {
		if got := SATD(make([]int32, n*n), n); got != 0 {
			t.Errorf("SATD(zero, %d) = %d, want 0", n, got)
		}
	}
}

func TestSATDConstantResidual(t *testing.T) {
	// A constant block has all its Hadamard energy in the DC coefficient:
	// n²·|v|, which the normalization maps to (n²/2)·|v| for 4×4 and
	// (n²/4)·|v| per 8×8 tile.
	res := make([]int32, 16)
	for i := range res {
		res[i] = -3
	}
	if got := SATD(res, 4); got != 8*3 {
		t.Errorf("SATD(const -3, 4) = %d, want 24", got)
	}
	res = make([]int32, 64)
	for i := range res {
		res[i] = 5
	}
	if got := SATD(res, 8); got != 16*5 {
		t.Errorf("SATD(const 5, 8) = %d, want 80", got)
	}
}

func TestSATDMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{4, 8} {
		for trial := 0; trial < 50; trial++ {
			res := make([]int32, n*n)
			for i := range res {
				res[i] = int32(rng.Intn(511) - 255)
			}
			if got, want := SATD(res, n), refSATD(res, n); got != want {
				t.Fatalf("n=%d trial %d: SATD = %d, reference = %d", n, trial, got, want)
			}
		}
	}
}

func TestSATDTilesLargeBlocks(t *testing.T) {
	// 16×16 and 32×32 SATD must equal the sum of their independent 8×8
	// tiles — the documented tiling contract.
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{16, 32} {
		res := make([]int32, n*n)
		for i := range res {
			res[i] = int32(rng.Intn(511) - 255)
		}
		var want int64
		tile := make([]int32, 64)
		for by := 0; by < n; by += 8 {
			for bx := 0; bx < n; bx += 8 {
				for y := 0; y < 8; y++ {
					copy(tile[y*8:y*8+8], res[(by+y)*n+bx:(by+y)*n+bx+8])
				}
				want += SATD(tile, 8)
			}
		}
		if got := SATD(res, n); got != want {
			t.Errorf("n=%d: SATD = %d, tile sum = %d", n, got, want)
		}
	}
}

func TestSATDPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SATD accepted a mis-sized residual")
		}
	}()
	SATD(make([]int32, 17), 4)
}

func TestSATDAllocationFree(t *testing.T) {
	res := make([]int32, 32*32)
	for i := range res {
		res[i] = int32(i % 17)
	}
	if a := testing.AllocsPerRun(100, func() { SATD(res, 32) }); a != 0 {
		t.Errorf("SATD allocates %.1f times per call, want 0", a)
	}
}
