// Package dct implements the transform-coding stage of the codec: integer
// DCT-II transforms of sizes 4, 8, 16 and 32 (plus the DST-VII used for 4×4
// intra blocks, mirroring HEVC), together with the QP-driven scalar quantizer
// Qstep = 2^((QP-4)/6).
//
// Convention. Each transform holds a fixed-point version of the orthonormal
// transform matrix, A = round(D · 2^matrixBits) where D is orthonormal. The
// forward transform returns coefficients scaled by 2^coefBits relative to the
// orthonormal transform of the input, and the inverse undoes both scales.
// Keeping the matrices orthonormal (rather than HEVC's hand-tuned integers)
// preserves the energy-compaction behaviour the paper analyzes (§3.1,
// Fig. 3) while making round-trip bounds easy to reason about.
package dct

import (
	"fmt"
	"math"
)

const (
	matrixBits = 10 // fractional bits in the fixed-point transform matrices
	coefBits   = 6  // coefficients carry an extra 2^6 scale vs orthonormal
)

// Transform is a 2-D separable integer transform of a fixed square size.
// Instances carry scratch buffers and are not safe for concurrent use.
type Transform struct {
	n    int
	mat  []int32 // n×n fixed-point forward matrix, row-major
	tmp  []int64 // scratch for the separable passes
	tmp2 []int64
}

// NewDCT returns the integer DCT-II transform of size n (4, 8, 16 or 32).
func NewDCT(n int) *Transform {
	switch n {
	case 4, 8, 16, 32:
	default:
		panic(fmt.Sprintf("dct: unsupported size %d", n))
	}
	t := &Transform{n: n, mat: make([]int32, n*n), tmp: make([]int64, n*n), tmp2: make([]int64, n*n)}
	for k := 0; k < n; k++ {
		ck := 1.0
		if k == 0 {
			ck = math.Sqrt(0.5)
		}
		for j := 0; j < n; j++ {
			v := math.Sqrt(2/float64(n)) * ck *
				math.Cos(float64(2*j+1)*float64(k)*math.Pi/float64(2*n))
			t.mat[k*n+j] = int32(math.Round(v * (1 << matrixBits)))
		}
	}
	return t
}

// NewDST4 returns the 4×4 DST-VII transform HEVC applies to 4×4 intra luma
// residuals; its basis better matches residuals that grow away from the
// predicted edge.
func NewDST4() *Transform {
	n := 4
	t := &Transform{n: n, mat: make([]int32, n*n), tmp: make([]int64, n*n), tmp2: make([]int64, n*n)}
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			v := 2 / math.Sqrt(2*float64(n)+1) *
				math.Sin(float64(2*j+1)*float64(k+1)*math.Pi/float64(2*n+1))
			t.mat[k*n+j] = int32(math.Round(v * (1 << matrixBits)))
		}
	}
	return t
}

// Size reports the transform's block edge length.
func (t *Transform) Size() int { return t.n }

// Forward transforms the n×n residual block res (row-major) into
// coefficients, scaled by 2^coefBits relative to the orthonormal transform.
// dst and res may alias.
func (t *Transform) Forward(dst, res []int32) {
	n := t.n
	if len(res) != n*n || len(dst) != n*n {
		panic("dct: bad block size")
	}
	tmp := t.tmp
	for i := range tmp {
		tmp[i] = 0
	}
	// Stage 1: tmp = A · res (transform the columns), streamed row-major.
	for k := 0; k < n; k++ {
		arow := t.mat[k*n : k*n+n]
		trow := tmp[k*n : k*n+n]
		for i := 0; i < n; i++ {
			a := int64(arow[i])
			if a == 0 {
				continue
			}
			rrow := res[i*n : i*n+n]
			for j, r := range rrow {
				trow[j] += a * int64(r)
			}
		}
	}
	// Stage 2: dst = tmp · Aᵀ (transform the rows), then rescale:
	// total matrix scale is 2^(2·matrixBits); keep 2^coefBits.
	const shift = 2*matrixBits - coefBits
	const half = int64(1) << (shift - 1)
	for k := 0; k < n; k++ {
		trow := tmp[k*n : k*n+n]
		for l := 0; l < n; l++ {
			var acc int64
			lrow := t.mat[l*n : l*n+n]
			for j, v := range trow {
				acc += v * int64(lrow[j])
			}
			dst[k*n+l] = int32((acc + half) >> shift)
		}
	}
}

// Inverse reconstructs the residual block from coefficients produced by
// Forward (after any quantization round-trip). dst and coef may alias.
func (t *Transform) Inverse(dst, coef []int32) {
	n := t.n
	if len(coef) != n*n || len(dst) != n*n {
		panic("dct: bad block size")
	}
	// Quantized coefficient blocks are mostly zero, so both passes skip
	// zero terms. tmpT holds the transpose of Aᵀ·coef: tmpT[j][i].
	tmpT := t.tmp
	for i := range tmpT {
		tmpT[i] = 0
	}
	for k := 0; k < n; k++ {
		crow := coef[k*n : k*n+n]
		arow := t.mat[k*n : k*n+n]
		for j, c := range crow {
			if c == 0 {
				continue
			}
			c64 := int64(c)
			tT := tmpT[j*n : j*n+n]
			for i, a := range arow {
				tT[i] += c64 * int64(a)
			}
		}
	}
	// Stage 2: dst[i][j] = Σ_k tmpT[k][i]·A[k][j], accumulated row-major.
	const shift = 2*matrixBits + coefBits
	const half = int64(1) << (shift - 1)
	acc := t.tmp2
	for i := range acc {
		acc[i] = 0
	}
	for k := 0; k < n; k++ {
		tT := tmpT[k*n : k*n+n]
		arow := t.mat[k*n : k*n+n]
		for i, v := range tT {
			if v == 0 {
				continue
			}
			drow := acc[i*n : i*n+n]
			for j, a := range arow {
				drow[j] += v * int64(a)
			}
		}
	}
	for i, v := range acc {
		dst[i] = int32((v + half) >> shift)
	}
}

// qstepTable[qp] is Qstep = 2^((qp-4)/6) for qp in [0, MaxQP].
var qstepTable [MaxQP + 1]float64

// MaxQP is the largest supported quantization parameter.
const MaxQP = 51

func init() {
	for qp := 0; qp <= MaxQP; qp++ {
		qstepTable[qp] = math.Pow(2, float64(qp-4)/6)
	}
}

// Qstep returns the quantizer step size for qp, clamping qp into range.
func Qstep(qp int) float64 {
	if qp < 0 {
		qp = 0
	}
	if qp > MaxQP {
		qp = MaxQP
	}
	return qstepTable[qp]
}

// quantScale is the scale of Forward's output relative to orthonormal.
const quantScale = 1 << coefBits

// Quantize maps coefficients (as produced by Forward) to integer levels with
// step Qstep(qp) in the orthonormal domain, using a dead-zone rounding offset
// of roughly 1/3 (the HEVC intra choice). dst and coef may alias.
func Quantize(dst, coef []int32, qp int) {
	step := Qstep(qp) * quantScale
	inv := 1 / step
	for i, c := range coef {
		v := float64(c) * inv
		if v >= 0 {
			dst[i] = int32(v + 1.0/3.0)
		} else {
			dst[i] = -int32(-v + 1.0/3.0)
		}
	}
}

// Dequantize maps levels back to reconstructed coefficients in Forward's
// scale. dst and levels may alias.
func Dequantize(dst, levels []int32, qp int) {
	step := Qstep(qp) * quantScale
	for i, l := range levels {
		dst[i] = int32(math.Round(float64(l) * step))
	}
}

// ForwardFloat computes the exact orthonormal 2-D DCT-II of a float block,
// used by the analysis tooling (Fig. 3's outlier study). n must be the block
// edge; src is row-major n×n.
func ForwardFloat(src []float64, n int) []float64 {
	d := basisFloat(n)
	return mulABAt(d, src, n)
}

// InverseFloat inverts ForwardFloat.
func InverseFloat(coef []float64, n int) []float64 {
	d := basisFloat(n)
	// X = Dᵀ · Y · D
	dt := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			dt[i*n+j] = d[j*n+i]
		}
	}
	return mulABAt(dt, coef, n)
}

func basisFloat(n int) []float64 {
	d := make([]float64, n*n)
	for k := 0; k < n; k++ {
		ck := 1.0
		if k == 0 {
			ck = math.Sqrt(0.5)
		}
		for j := 0; j < n; j++ {
			d[k*n+j] = math.Sqrt(2/float64(n)) * ck *
				math.Cos(float64(2*j+1)*float64(k)*math.Pi/float64(2*n))
		}
	}
	return d
}

// mulABAt returns A·B·Aᵀ for n×n matrices.
func mulABAt(a, b []float64, n int) []float64 {
	tmp := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc float64
			for k := 0; k < n; k++ {
				acc += a[i*n+k] * b[k*n+j]
			}
			tmp[i*n+j] = acc
		}
	}
	out := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc float64
			for k := 0; k < n; k++ {
				acc += tmp[i*n+k] * a[j*n+k]
			}
			out[i*n+j] = acc
		}
	}
	return out
}
