// SATD — the sum of absolute transformed differences — is the coarse
// distortion metric of the encoder's two-stage FastSearch intra mode search.
// A Walsh–Hadamard transform of the residual approximates the DCT's energy
// compaction at a fraction of its cost (butterflies only, no multiplies), so
// ranking candidate modes by SATD tracks their eventual rate-distortion cost
// far better than plain SAD, which is what lets FastSearch survive with fewer
// full-RD trials. This mirrors the HM/x265 mode-decision pipeline the paper's
// NVENC targets implement in silicon.
package dct

// SATD returns the sum of absolute Walsh–Hadamard transformed values of the
// n×n residual block res (row-major), halved per the usual convention so the
// magnitudes are comparable with SAD. n must be 4, 8, 16 or 32. 4×4 blocks
// use a 4×4 Hadamard; larger blocks are tiled with 8×8 transforms. The
// function allocates nothing.
func SATD(res []int32, n int) int64 {
	if len(res) != n*n {
		panic("dct: bad block size")
	}
	if n == 4 {
		return satd4(res, 0, 4)
	}
	var sum int64
	for by := 0; by < n; by += 8 {
		for bx := 0; bx < n; bx += 8 {
			sum += satd8(res, by*n+bx, n)
		}
	}
	return sum
}

// satd4 computes the 4×4 Hadamard SATD of the tile at offset off with the
// given row stride.
func satd4(res []int32, off, stride int) int64 {
	var m [16]int32
	for y := 0; y < 4; y++ {
		copy(m[y*4:y*4+4], res[off+y*stride:off+y*stride+4])
	}
	// Horizontal butterflies.
	for y := 0; y < 4; y++ {
		r := m[y*4 : y*4+4]
		a, b := r[0]+r[1], r[0]-r[1]
		c, d := r[2]+r[3], r[2]-r[3]
		r[0], r[2] = a+c, a-c
		r[1], r[3] = b+d, b-d
	}
	// Vertical butterflies and accumulation.
	var sum int64
	for x := 0; x < 4; x++ {
		a, b := m[x]+m[4+x], m[x]-m[4+x]
		c, d := m[8+x]+m[12+x], m[8+x]-m[12+x]
		for _, v := range [4]int32{a + c, b + d, a - c, b - d} {
			if v < 0 {
				v = -v
			}
			sum += int64(v)
		}
	}
	return (sum + 1) >> 1
}

// satd8 computes the 8×8 Hadamard SATD of the tile at offset off with the
// given row stride.
func satd8(res []int32, off, stride int) int64 {
	var m [64]int32
	for y := 0; y < 8; y++ {
		copy(m[y*8:y*8+8], res[off+y*stride:off+y*stride+8])
	}
	// Horizontal 8-point Walsh–Hadamard on every row.
	for y := 0; y < 8; y++ {
		hadamard8(m[y*8 : y*8+8 : y*8+8])
	}
	// Vertical pass, one column at a time, accumulating |coef|.
	var sum int64
	for x := 0; x < 8; x++ {
		var c [8]int32
		for y := 0; y < 8; y++ {
			c[y] = m[y*8+x]
		}
		hadamard8(c[:])
		for _, v := range c {
			if v < 0 {
				v = -v
			}
			sum += int64(v)
		}
	}
	return (sum + 2) >> 2
}

// hadamard8 applies the unnormalized 8-point Walsh–Hadamard transform in
// place.
func hadamard8(v []int32) {
	_ = v[7]
	for s := 1; s < 8; s <<= 1 {
		for i := 0; i < 8; i += s << 1 {
			for j := i; j < i+s; j++ {
				a, b := v[j], v[j+s]
				v[j], v[j+s] = a+b, a-b
			}
		}
	}
}
