// Package hw models the hardware-cost side of the paper (§6–§7): die area,
// power and energy of video codecs, NICs, GPUs and the proposed three-in-one
// tensor codec.
//
// Published numbers from the paper (Table 3, Fig. 12) are carried as data —
// they were obtained by synthesizing open-source RTL with ASAP7 and by die
// measurement, neither of which is reproducible offline — and every derived
// result (energy ratios, codec+NIC system area, sharing savings) is computed
// from them by the same arithmetic the paper uses.
package hw

import "fmt"

// Component is a hardware block with its published characteristics.
type Component struct {
	Name           string
	PowerW         float64
	AreaMM2        float64
	EnergyPerBitPJ float64 // energy per tensor bit processed / transmitted
	ThroughputGbps float64 // sustained tensor throughput
}

// Table 3 of the paper.
var (
	NCCLEndToEnd = Component{Name: "NCCL End to End", EnergyPerBitPJ: 5120}

	H264Enc = Component{Name: "H.264 Enc (100Gbps)", PowerW: 1.1, AreaMM2: 0.96, EnergyPerBitPJ: 167.8, ThroughputGbps: 100}
	H264Dec = Component{Name: "H.264 Dec (100Gbps)", PowerW: 1.0, AreaMM2: 0.97, EnergyPerBitPJ: 154.3, ThroughputGbps: 100}
	H265Enc = Component{Name: "H.265 Enc (100Gbps)", PowerW: 11.0, AreaMM2: 11.7, EnergyPerBitPJ: 1707.5, ThroughputGbps: 100}
	H265Dec = Component{Name: "H.265 Dec (100Gbps)", PowerW: 4.3, AreaMM2: 2.1, EnergyPerBitPJ: 665.4, ThroughputGbps: 100}

	ThreeInOneEnc = Component{Name: "Three-in-one Enc", PowerW: 0.78, AreaMM2: 0.70, EnergyPerBitPJ: 97.8, ThroughputGbps: 100}
	ThreeInOneDec = Component{Name: "Three-in-one Dec", PowerW: 0.58, AreaMM2: 0.58, EnergyPerBitPJ: 63.5, ThroughputGbps: 100}
)

// Devices of Fig. 12. GPU area is published at Samsung 8nm (628 mm²) and
// scaled to 7nm (398 mm²); the NIC is a direct die measurement.
var (
	GPURTX3090     = Component{Name: "RTX 3090 GPU (8nm)", AreaMM2: 628, PowerW: 350}
	GPURTX3090At7  = Component{Name: "RTX 3090 GPU (scaled 7nm)", AreaMM2: 398, PowerW: 350}
	NICMellanoxCX5 = Component{Name: "Mellanox CX5 100Gbps NIC", AreaMM2: 169.7, PowerW: 25, ThroughputGbps: 100}
	// Server-class CPU for the Fig. 12 comparison (modeled: EPYC-class
	// compute+IO dies at 7nm).
	CPUServer = Component{Name: "Server CPU (7nm, modeled)", AreaMM2: 416, PowerW: 200}
)

// SingleInstanceThroughputGbps is one hardware codec instance's tensor
// throughput: 3840×2160 luma pixels at 60 fps and 8 bits each ≈ 4 Gb/s.
const SingleInstanceThroughputGbps = 3840 * 2160 * 60 * 8 / 1e9

// InstancesFor reports how many single codec instances must be aggregated to
// sustain targetGbps (the Fig. 12 normalization).
func InstancesFor(targetGbps float64) int {
	n := int(targetGbps / SingleInstanceThroughputGbps)
	if float64(n)*SingleInstanceThroughputGbps < targetGbps {
		n++
	}
	return n
}

// Breakdown is a die-area decomposition by pipeline component (fractions sum
// to 1). Fractions are modeled from the paper's Fig. 12 layouts, which show
// inter-frame prediction and the frame buffer dominating.
type Breakdown struct {
	InterPred   float64
	FrameBuffer float64
	IntraPred   float64
	Transform   float64
	Entropy     float64
	Misc        float64
}

// EncoderBreakdown and DecoderBreakdown are the modeled Fig. 12(a–d)
// component splits.
var (
	EncoderBreakdown = Breakdown{InterPred: 0.30, FrameBuffer: 0.25, IntraPred: 0.15, Transform: 0.12, Entropy: 0.10, Misc: 0.08}
	DecoderBreakdown = Breakdown{InterPred: 0.25, FrameBuffer: 0.30, IntraPred: 0.15, Transform: 0.12, Entropy: 0.12, Misc: 0.06}
)

// TensorOnlyFraction reports the fraction of die area a codec retains once
// inter-frame prediction is removed and the frame buffer shrinks (the paper:
// dropping inter also "drastically decreases the buffer size requirement";
// we model the buffer shrinking to a quarter).
func (b Breakdown) TensorOnlyFraction() float64 {
	return b.IntraPred + b.Transform + b.Entropy + b.Misc + b.FrameBuffer*0.25
}

// SharedPipelineFraction is the fraction of the three-in-one encoder spent
// on the pipeline shared by tensor/image/video inputs (§7: 80%).
const SharedPipelineFraction = 0.80

// EnergyRatioVsNCCL reports how much cheaper one encode+decode pass is than
// moving the same bits with NCCL: 5120/(97.8+63.5) ≈ 31.7× for the
// three-in-one codec (§7.3).
func EnergyRatioVsNCCL(enc, dec Component) float64 {
	return NCCLEndToEnd.EnergyPerBitPJ / (enc.EnergyPerBitPJ + dec.EnergyPerBitPJ)
}

// CompressionEnergyEfficiency reports the end-to-end energy gain of
// compress-transfer-decompress at compression ratio r versus raw transfer
// (§7.3): 5120 / (5120/r + Eenc + Edec).
func CompressionEnergyEfficiency(enc, dec Component, ratio float64) float64 {
	if ratio <= 0 {
		panic("hw: ratio must be positive")
	}
	raw := NCCLEndToEnd.EnergyPerBitPJ
	compressed := raw/ratio + enc.EnergyPerBitPJ + dec.EnergyPerBitPJ
	return raw / compressed
}

// SystemArea reports the total die area of a 100 Gbps-effective
// communication system: the codec pair plus a NIC sized for the post-
// compression traffic (NIC area scales with required line rate — the Fig. 15
// model where better compression shrinks the dominant NIC cost).
func SystemArea(encArea, decArea, compressionRatio float64) float64 {
	if compressionRatio < 1 {
		compressionRatio = 1
	}
	nic := NICMellanoxCX5.AreaMM2 / compressionRatio
	return encArea + decArea + nic
}

// TransferEnergyPJ reports the total energy in pJ to move payloadBits of
// tensor data through a codec pair and the network at the given compression
// ratio.
func TransferEnergyPJ(enc, dec Component, compressionRatio, payloadBits float64) float64 {
	if compressionRatio < 1 {
		compressionRatio = 1
	}
	wire := payloadBits / compressionRatio * NCCLEndToEnd.EnergyPerBitPJ
	codec := payloadBits * (enc.EnergyPerBitPJ + dec.EnergyPerBitPJ)
	return wire + codec
}

// BaselineCodec describes a hardware implementation of one of the §7.1
// chained baseline compressors (modeled from the cited open-source RTL,
// normalized to 100 Gbps at 7nm).
type BaselineCodec struct {
	Name    string
	EncArea float64 // mm²
	DecArea float64
	EncPJ   float64 // pJ per tensor bit
	DecPJ   float64
}

// BaselineCodecs are the four entropy back-ends of the Fig. 15 comparison.
// CABAC's serial bin loop makes it the most expensive; LZ4 is cheap but
// compresses tensors poorly; Huffman and Deflate sit between.
var BaselineCodecs = []BaselineCodec{
	{Name: "Huffman", EncArea: 0.18, DecArea: 0.15, EncPJ: 35, DecPJ: 30},
	{Name: "Deflate", EncArea: 0.65, DecArea: 0.40, EncPJ: 120, DecPJ: 80},
	{Name: "LZ4", EncArea: 0.30, DecArea: 0.20, EncPJ: 45, DecPJ: 35},
	{Name: "CABAC", EncArea: 0.28, DecArea: 0.26, EncPJ: 140, DecPJ: 130},
}

// BaselineByName looks up a baseline codec model.
func BaselineByName(name string) (BaselineCodec, error) {
	for _, b := range BaselineCodecs {
		if b.Name == name {
			return b, nil
		}
	}
	return BaselineCodec{}, fmt.Errorf("hw: unknown baseline codec %q", name)
}
