package hw

import (
	"math"
	"testing"
)

func TestDerivedThreeInOneNearPublished(t *testing.T) {
	// The derivation from H.264 components must land in the neighbourhood
	// of the paper's synthesized 0.70 mm² encoder (same inputs, same
	// arithmetic → order-of-magnitude agreement, not digit match).
	m := DeriveThreeInOneEncoder()
	if m.TotalArea() < ThreeInOneEnc.AreaMM2*0.5 || m.TotalArea() > ThreeInOneEnc.AreaMM2*1.5 {
		t.Fatalf("derived encoder area %.3f mm² too far from published %.2f",
			m.TotalArea(), ThreeInOneEnc.AreaMM2)
	}
}

func TestSharedPipelineFractionNear80Percent(t *testing.T) {
	m := DeriveThreeInOneEncoder()
	if math.Abs(m.SharedFraction()-SharedPipelineFraction) > 0.12 {
		t.Fatalf("shared fraction %.2f, paper says %.2f", m.SharedFraction(), SharedPipelineFraction)
	}
}

func TestSharingBeatsSeparateCodecs(t *testing.T) {
	// The whole point of the three-in-one: one shared pipeline is cheaper
	// than a dedicated tensor codec plus a dedicated video encoder.
	shared := DeriveThreeInOneEncoder().TotalArea()
	separate := SeparateCodecsArea()
	if shared >= separate {
		t.Fatalf("sharing (%.3f mm²) should undercut separate codecs (%.3f mm²)", shared, separate)
	}
}

func TestVideoSideIsMinorCost(t *testing.T) {
	// Adding video/image support must be a marginal overhead on the shared
	// pipeline (the paper: "only marginal overhead").
	m := DeriveThreeInOneEncoder()
	if m.VideoArea > m.SharedArea*0.5 {
		t.Fatalf("video side %.3f mm² not marginal vs shared %.3f mm²", m.VideoArea, m.SharedArea)
	}
}
