package hw

import (
	"math"
	"testing"
)

func TestEnergyRatioMatchesPaper(t *testing.T) {
	// §7.3: 5120/(97.8+63.5) = 31.7×.
	r := EnergyRatioVsNCCL(ThreeInOneEnc, ThreeInOneDec)
	if math.Abs(r-31.7) > 0.1 {
		t.Fatalf("three-in-one energy ratio %.2f, paper says 31.7", r)
	}
}

func TestCompressionEnergyEfficiencyMatchesPaper(t *testing.T) {
	// §7.3 example: 5× compression → 5120/(5120/5+97.8+63.5) = 4.32×.
	e := CompressionEnergyEfficiency(ThreeInOneEnc, ThreeInOneDec, 5)
	if math.Abs(e-4.32) > 0.01 {
		t.Fatalf("efficiency at 5× = %.3f, paper says 4.32", e)
	}
	// Monotone in ratio, and ratio 1 still pays codec energy (< 1×).
	if CompressionEnergyEfficiency(ThreeInOneEnc, ThreeInOneDec, 1) >= 1 {
		t.Fatal("ratio-1 compression should not be a net win")
	}
	if CompressionEnergyEfficiency(ThreeInOneEnc, ThreeInOneDec, 10) <= e {
		t.Fatal("efficiency should grow with ratio")
	}
}

func TestH264PairTinyVsGPU(t *testing.T) {
	// Fig. 12: H.264 enc+dec pair < 2 mm², ≈199× smaller than the 7nm GPU
	// and ≈86× smaller than the CX5 NIC.
	pair := H264Enc.AreaMM2 + H264Dec.AreaMM2
	if pair >= 2 {
		t.Fatalf("H.264 pair %.2f mm², want < 2", pair)
	}
	if ratio := GPURTX3090At7.AreaMM2 / pair; math.Abs(ratio-206) > 10 {
		t.Fatalf("GPU/codec ratio %.0f, want ≈199-206", ratio)
	}
	if ratio := NICMellanoxCX5.AreaMM2 / pair; ratio < 80 || ratio > 95 {
		t.Fatalf("NIC/codec ratio %.0f, want ≈86", ratio)
	}
}

func TestInstancesFor100Gbps(t *testing.T) {
	// One 4K60 instance ≈ 3.98 Gb/s → 26 instances for 100 Gb/s.
	n := InstancesFor(100)
	if n < 24 || n > 27 {
		t.Fatalf("instances for 100Gbps = %d, want ~26", n)
	}
	if InstancesFor(SingleInstanceThroughputGbps) != 1 {
		t.Fatal("single instance should cover its own throughput")
	}
}

func TestBreakdownsSumToOne(t *testing.T) {
	for _, b := range []Breakdown{EncoderBreakdown, DecoderBreakdown} {
		sum := b.InterPred + b.FrameBuffer + b.IntraPred + b.Transform + b.Entropy + b.Misc
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("breakdown sums to %f", sum)
		}
	}
}

func TestTensorOnlySavesMostArea(t *testing.T) {
	// Removing inter prediction and shrinking the buffer must cut the die
	// roughly in half (the §6.2 argument for tensor-specialized codecs).
	f := EncoderBreakdown.TensorOnlyFraction()
	if f > 0.60 || f < 0.35 {
		t.Fatalf("tensor-only fraction %.2f outside the plausible band", f)
	}
}

func TestThreeInOneCheaperThanH265(t *testing.T) {
	if ThreeInOneEnc.AreaMM2 >= H265Enc.AreaMM2 || ThreeInOneEnc.PowerW >= H265Enc.PowerW {
		t.Fatal("three-in-one encoder should undercut the H.265 encoder")
	}
	if ThreeInOneDec.EnergyPerBitPJ >= H265Dec.EnergyPerBitPJ {
		t.Fatal("three-in-one decoder energy should undercut H.265")
	}
}

func TestSystemAreaShrinksWithCompression(t *testing.T) {
	raw := SystemArea(ThreeInOneEnc.AreaMM2, ThreeInOneDec.AreaMM2, 1)
	at5 := SystemArea(ThreeInOneEnc.AreaMM2, ThreeInOneDec.AreaMM2, 5)
	if at5 >= raw {
		t.Fatal("compression should shrink the codec+NIC system")
	}
	// NIC dominates at ratio 1.
	if raw < NICMellanoxCX5.AreaMM2 {
		t.Fatal("system area must include the NIC")
	}
}

func TestTransferEnergyDecomposition(t *testing.T) {
	bits := 1e9
	e := TransferEnergyPJ(ThreeInOneEnc, ThreeInOneDec, 4, bits)
	want := bits/4*5120 + bits*(97.8+63.5)
	if math.Abs(e-want) > 1 {
		t.Fatalf("energy %.0f, want %.0f", e, want)
	}
	// Ratios below 1 clamp to raw transfer + codec cost.
	if TransferEnergyPJ(ThreeInOneEnc, ThreeInOneDec, 0.5, bits) !=
		TransferEnergyPJ(ThreeInOneEnc, ThreeInOneDec, 1, bits) {
		t.Fatal("ratio clamp broken")
	}
}

func TestBaselineByName(t *testing.T) {
	for _, name := range []string{"Huffman", "Deflate", "LZ4", "CABAC"} {
		b, err := BaselineByName(name)
		if err != nil || b.Name != name {
			t.Fatalf("BaselineByName(%q): %v", name, err)
		}
		if b.EncArea <= 0 || b.EncPJ <= 0 {
			t.Fatalf("%s: non-positive costs", name)
		}
	}
	if _, err := BaselineByName("zstd"); err == nil {
		t.Fatal("unknown baseline accepted")
	}
}
