package hw

// This file derives the three-in-one codec's cost structure from the H.264
// components it is built from (§7: "We developed this codec using the H.264
// video codec as a foundation"), reproducing the paper's area arithmetic
// rather than just quoting its results.

// ThreeInOneModel decomposes the proposed codec into its shared tensor/
// image/video pipeline and the video-only side pipeline.
type ThreeInOneModel struct {
	// SharedArea is the augmented shared pipeline (intra prediction,
	// transform, entropy, control) sized for 100 Gbps tensor throughput.
	SharedArea float64
	// VideoArea is the video-only machinery (inter prediction, motion
	// estimation, full-rate frame buffer) sized for 8K60 video.
	VideoArea float64
	// ConvertArea is the data-type conversion and alignment block (§7(a))
	// that feeds floating-point and micro-scaled tensors to the 8-bit core.
	ConvertArea float64
}

// DeriveThreeInOneEncoder builds the encoder model from the H.264 encoder's
// published area and component breakdown:
//
//   - the tensor-relevant fraction of the 100 Gbps H.264 encoder becomes the
//     shared pipeline (inter prediction dropped, frame buffer shrunk —
//     Breakdown.TensorOnlyFraction);
//   - the video-only parts are retained at single-instance (8K60) scale
//     rather than 100 Gbps scale, which is the design's key saving;
//   - a small conversion/alignment block is added (modeled at 6% of shared).
func DeriveThreeInOneEncoder() ThreeInOneModel {
	total100G := H264Enc.AreaMM2
	shared := total100G * EncoderBreakdown.TensorOnlyFraction()
	// Video-only area scales down from 100 Gbps aggregation to one 8K60
	// instance: 8K60 ≈ 4× a 4K60 instance, over the ~26 instances the
	// 100 Gbps aggregate needed.
	videoFraction := EncoderBreakdown.InterPred + EncoderBreakdown.FrameBuffer*0.75
	instScale := 4.0 / float64(InstancesFor(100))
	video := total100G * videoFraction * instScale
	return ThreeInOneModel{
		SharedArea:  shared,
		VideoArea:   video,
		ConvertArea: shared * 0.06,
	}
}

// TotalArea reports the modeled die area.
func (m ThreeInOneModel) TotalArea() float64 {
	return m.SharedArea + m.VideoArea + m.ConvertArea
}

// SharedFraction reports the fraction of the die spent on the shared
// pipeline; the paper reports 80%.
func (m ThreeInOneModel) SharedFraction() float64 {
	return m.SharedArea / m.TotalArea()
}

// SeparateCodecsArea is the cost of NOT sharing: a dedicated 100 Gbps tensor
// codec (the tensor-only fraction) plus a full standalone video encoder
// instance.
func SeparateCodecsArea() float64 {
	tensorOnly := H264Enc.AreaMM2 * EncoderBreakdown.TensorOnlyFraction()
	videoInstance := H264Enc.AreaMM2 * 4 / float64(InstancesFor(100)) // one 8K60 encoder
	return tensorOnly + videoInstance
}
