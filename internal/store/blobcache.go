// In-memory refcounted content-addressed blob cache (DESIGN.md §16).
//
// The disk Store (store.go) content-addresses chunk payloads across model
// checkpoints; the kv session tier needs the same dedupe property for live
// session chunks, but in memory, with sharing expressed as reference counts
// instead of manifests: N sessions whose prompt prefixes hash to the same
// compressed chunk hold N references to one byte slice, and the bytes die
// with the last reference. The cache never evicts on its own — ownership of
// "when do bytes leave memory" belongs to the kv tier's budget/LRU, which
// calls Release; the cache's job is exact unique-byte accounting, so the
// budget charges each distinct chunk once no matter how many sessions alias
// it.
package store

import (
	"crypto/sha256"
	"sync"

	"repro/internal/obs"
)

// BlobKey is the SHA-256 content address of a cached blob.
type BlobKey [sha256.Size]byte

// blobCacheMetrics holds the pre-resolved store.blobcache.* handles:
//
//	store.blobcache.puts / hits / misses / releases / frees  counters
//	store.blobcache.blobs / bytes                            gauges
type blobCacheMetrics struct {
	puts, hits, misses *obs.Counter
	releases, frees    *obs.Counter
	blobs, bytes       *obs.Gauge
}

func newBlobCacheMetrics(reg *obs.Registry) *blobCacheMetrics {
	if reg == nil {
		return nil
	}
	return &blobCacheMetrics{
		puts:     reg.Counter("store.blobcache.puts"),
		hits:     reg.Counter("store.blobcache.hits"),
		misses:   reg.Counter("store.blobcache.misses"),
		releases: reg.Counter("store.blobcache.releases"),
		frees:    reg.Counter("store.blobcache.frees"),
		blobs:    reg.Gauge("store.blobcache.blobs"),
		bytes:    reg.Gauge("store.blobcache.bytes"),
	}
}

type cachedBlob struct {
	data []byte
	refs int
}

// BlobCache is a concurrency-safe refcounted content-addressed byte cache.
type BlobCache struct {
	mu    sync.Mutex
	blobs map[BlobKey]*cachedBlob
	bytes int64
	m     *blobCacheMetrics
}

// NewBlobCache creates an empty cache; reg nil disables metrics.
func NewBlobCache(reg *obs.Registry) *BlobCache {
	return &BlobCache{blobs: make(map[BlobKey]*cachedBlob), m: newBlobCacheMetrics(reg)}
}

// Put interns data under its content address and takes one reference. added
// reports whether the bytes are new to the cache (the caller's budget must
// charge len(data) exactly then). The cache keeps its own copy, so callers
// may reuse their buffer.
func (c *BlobCache) Put(data []byte) (key BlobKey, added bool) {
	key = sha256.Sum256(data)
	c.mu.Lock()
	defer c.mu.Unlock()
	if b, ok := c.blobs[key]; ok {
		b.refs++
		if c.m != nil {
			c.m.puts.Inc()
			c.m.hits.Inc()
		}
		return key, false
	}
	c.blobs[key] = &cachedBlob{data: append([]byte(nil), data...), refs: 1}
	c.bytes += int64(len(data))
	if c.m != nil {
		c.m.puts.Inc()
		c.m.misses.Inc()
		c.m.blobs.Set(int64(len(c.blobs)))
		c.m.bytes.Set(c.bytes)
	}
	return key, true
}

// Ref takes one additional reference on key and returns its bytes. The
// returned slice is shared and must be treated as immutable. ok is false
// when the key is not resident (fully released).
func (c *BlobCache) Ref(key BlobKey) (data []byte, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.blobs[key]
	if !ok {
		if c.m != nil {
			c.m.misses.Inc()
		}
		return nil, false
	}
	b.refs++
	if c.m != nil {
		c.m.hits.Inc()
	}
	return b.data, true
}

// Release drops one reference on key and returns the bytes freed — len(data)
// when this was the last reference, 0 otherwise (including unknown keys,
// which are counted but tolerated so teardown paths can be idempotent).
func (c *BlobCache) Release(key BlobKey) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.blobs[key]
	if !ok {
		return 0
	}
	if c.m != nil {
		c.m.releases.Inc()
	}
	b.refs--
	if b.refs > 0 {
		return 0
	}
	freed := int64(len(b.data))
	delete(c.blobs, key)
	c.bytes -= freed
	if c.m != nil {
		c.m.frees.Inc()
		c.m.blobs.Set(int64(len(c.blobs)))
		c.m.bytes.Set(c.bytes)
	}
	return freed
}

// Bytes returns the unique resident bytes (each blob counted once).
func (c *BlobCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Blobs returns the number of distinct resident blobs.
func (c *BlobCache) Blobs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.blobs)
}
