package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/obs"
)

// testStack builds a deterministic stack of weight-like layers.
func testStack(seed int64, layers, rows, cols int) []*core.Tensor {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*core.Tensor, layers)
	for l := range out {
		t := core.NewTensor(rows, cols)
		for i := range t.Data {
			t.Data[i] = float32(rng.NormFloat64() * 0.05)
		}
		out[l] = t
	}
	return out
}

func testOptions(workers int) core.Options {
	o := core.DefaultOptions()
	o.MaxFrameW, o.MaxFrameH = 64, 64
	o.Workers = workers
	o.Index = true
	return o
}

// encodeStack is a fatal-on-error indexed encode at QP 28.
func encodeStack(t *testing.T, stack []*core.Tensor) *core.Encoded {
	t.Helper()
	e, err := testOptions(2).EncodeStack(stack, 28)
	if err != nil {
		t.Fatalf("EncodeStack: %v", err)
	}
	return e
}

func openStore(t *testing.T, reg *obs.Registry) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), reg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func counter(reg *obs.Registry, name string) int64 {
	return reg.Snapshot().Counters[name]
}

// TestPackFetchRoundTrip pins the store's core contract: a fetched tensor is
// byte-identical to the packed one — same stream, same metadata — for both
// indexed and plain checksummed containers.
func TestPackFetchRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	s := openStore(t, reg)

	attn := encodeStack(t, testStack(1, 4, 64, 128))
	mlpOpts := testOptions(2)
	mlpOpts.Index = false
	mlpOpts.Checksum = true
	mlp, err := mlpOpts.EncodeStack(testStack(2, 3, 64, 64), 30)
	if err != nil {
		t.Fatalf("EncodeStack: %v", err)
	}

	man, err := s.Pack("m1", []PackEntry{
		{Name: "attn", Params: []string{"l0.attn", "l1.attn", "l2.attn", "l3.attn"}, Enc: attn},
		{Name: "mlp", Enc: mlp},
	})
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	if len(man.Tensors) != 2 || man.Model != "m1" {
		t.Fatalf("manifest = %+v", man)
	}
	if man.PackedBytes() != int64(len(attn.Stream)+len(mlp.Stream)) {
		t.Fatalf("PackedBytes = %d, want %d", man.PackedBytes(), len(attn.Stream)+len(mlp.Stream))
	}
	if tm := man.Tensor("attn"); tm == nil || tm.Trailer.Hash == "" {
		t.Fatalf("indexed tensor missing trailer blob: %+v", tm)
	}
	if tm := man.Tensor("mlp"); tm == nil || tm.Trailer.Hash != "" {
		t.Fatalf("un-indexed tensor grew a trailer blob: %+v", tm)
	}

	got, err := s.Fetch("m1")
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	for name, want := range map[string]*core.Encoded{"attn": attn, "mlp": mlp} {
		g, ok := got[name]
		if !ok {
			t.Fatalf("Fetch missing tensor %q", name)
		}
		if !bytes.Equal(g.Stream, want.Stream) {
			t.Errorf("%s: fetched stream differs from packed (%d vs %d bytes)", name, len(g.Stream), len(want.Stream))
		}
		if g.Layers != want.Layers || g.Rows != want.Rows || g.Cols != want.Cols ||
			g.QP != want.QP || g.MaxFrameW != want.MaxFrameW || g.MaxFrameH != want.MaxFrameH {
			t.Errorf("%s: metadata differs: got %+v", name, g)
		}
		if len(g.Scales) != len(want.Scales) {
			t.Fatalf("%s: %d scales, want %d", name, len(g.Scales), len(want.Scales))
		}
		for i := range g.Scales {
			if g.Scales[i] != want.Scales[i] || g.Zeros[i] != want.Zeros[i] {
				t.Fatalf("%s: quant metadata differs at %d", name, i)
			}
		}
	}

	// The fetched encode must decode — and identically to the original.
	opts := testOptions(4)
	wantDec, err := opts.DecodeStack(attn)
	if err != nil {
		t.Fatalf("DecodeStack(original): %v", err)
	}
	gotDec, err := opts.DecodeStack(got["attn"])
	if err != nil {
		t.Fatalf("DecodeStack(fetched): %v", err)
	}
	for l := range wantDec {
		for i := range wantDec[l].Data {
			if wantDec[l].Data[i] != gotDec[l].Data[i] {
				t.Fatalf("layer %d value %d differs after round-trip", l, i)
			}
		}
	}

	if counter(reg, "store.pack.blobs") == 0 || counter(reg, "store.fetch.blobs") == 0 {
		t.Fatalf("store.* metrics not recorded: %+v", reg.Snapshot().Counters)
	}

	models, err := s.Models()
	if err != nil || len(models) != 1 || models[0] != "m1" {
		t.Fatalf("Models = %v, %v", models, err)
	}
}

// TestPackDedupe pins content addressing: re-packing identical content writes
// no new blobs, and a perturbed checkpoint shares every unchanged chunk.
func TestPackDedupe(t *testing.T) {
	reg := obs.NewRegistry()
	s := openStore(t, reg)
	stack := testStack(7, 5, 64, 128)
	e1 := encodeStack(t, stack)

	if _, err := s.Pack("ckpt-a", []PackEntry{{Name: "w", Enc: e1}}); err != nil {
		t.Fatalf("Pack a: %v", err)
	}
	blobsAfterA, bytesAfterA, err := s.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	newAfterA := counter(reg, "store.pack.blobs_new")
	if int64(blobsAfterA) != newAfterA {
		t.Fatalf("Stats blobs %d != blobs_new %d", blobsAfterA, newAfterA)
	}

	// Same bytes under a new model name: zero new blobs, zero new bytes.
	if _, err := s.Pack("ckpt-b", []PackEntry{{Name: "w", Enc: e1}}); err != nil {
		t.Fatalf("Pack b: %v", err)
	}
	blobsAfterB, bytesAfterB, _ := s.Stats()
	if blobsAfterB != blobsAfterA || bytesAfterB != bytesAfterA {
		t.Fatalf("identical re-pack grew the store: %d/%d -> %d/%d blobs/bytes",
			blobsAfterA, bytesAfterA, blobsAfterB, bytesAfterB)
	}
	if got := counter(reg, "store.pack.blobs_new"); got != newAfterA {
		t.Fatalf("identical re-pack wrote %d new blobs", got-newAfterA)
	}
	if counter(reg, "store.pack.blobs") <= counter(reg, "store.pack.blobs_new") {
		t.Fatalf("dedup not visible in metrics: blobs=%d blobs_new=%d",
			counter(reg, "store.pack.blobs"), counter(reg, "store.pack.blobs_new"))
	}

	// Fine-tune one layer: only the chunks covering it (plus header/trailer,
	// whose bytes shift) may be new; chunks of untouched layers dedup.
	tuned := testStack(7, 5, 64, 128)
	for i := range tuned[4].Data {
		tuned[4].Data[i] += 0.01
	}
	e2 := encodeStack(t, tuned)
	lay1, err := codec.Layout(e1.Stream)
	if err != nil {
		t.Fatalf("Layout: %v", err)
	}
	lay2, err := codec.Layout(e2.Stream)
	if err != nil {
		t.Fatalf("Layout: %v", err)
	}
	shared := 0
	for i := range lay2.Entries {
		a, b := lay1.Entries[i], lay2.Entries[i]
		if a.Length == b.Length && bytes.Equal(
			e1.Stream[a.Offset:a.Offset+int64(a.Length)],
			e2.Stream[b.Offset:b.Offset+int64(b.Length)]) {
			shared++
		}
	}
	if shared == 0 {
		t.Fatalf("perturbed checkpoint shares no chunk with the original; dedup test is vacuous")
	}
	before := counter(reg, "store.pack.blobs_new")
	if _, err := s.Pack("ckpt-tuned", []PackEntry{{Name: "w", Enc: e2}}); err != nil {
		t.Fatalf("Pack tuned: %v", err)
	}
	newBlobs := counter(reg, "store.pack.blobs_new") - before
	// 1 header + chunks + 1 trailer were offered; `shared` chunks dedup.
	offered := int64(2 + len(lay2.Entries))
	if newBlobs > offered-int64(shared) {
		t.Fatalf("tuned pack wrote %d new blobs, want <= %d (shared %d of %d chunks)",
			newBlobs, offered-int64(shared), shared, len(lay2.Entries))
	}

	// Both checkpoints still fetch byte-identically from the shared pool.
	for model, want := range map[string]*core.Encoded{"ckpt-a": e1, "ckpt-tuned": e2} {
		got, err := s.Fetch(model)
		if err != nil {
			t.Fatalf("Fetch %s: %v", model, err)
		}
		if !bytes.Equal(got["w"].Stream, want.Stream) {
			t.Fatalf("%s: stream differs after dedup", model)
		}
	}
}

// TestStoreErrors pins the failure taxonomy: missing things are ErrNotFound,
// damaged blobs are ErrChecksum, and invalid inputs are rejected up front.
func TestStoreErrors(t *testing.T) {
	s := openStore(t, nil)
	e := encodeStack(t, testStack(3, 2, 64, 64))

	if _, err := s.Fetch("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Fetch missing model: %v", err)
	}
	for _, bad := range []string{"", ".", "..", "a/b", `a\b`} {
		if _, err := s.Pack(bad, []PackEntry{{Name: "w", Enc: e}}); err == nil {
			t.Fatalf("Pack accepted model name %q", bad)
		}
		if _, err := s.Pack("m", []PackEntry{{Name: bad, Enc: e}}); err == nil {
			t.Fatalf("Pack accepted tensor name %q", bad)
		}
	}
	if _, err := s.Pack("m", nil); err == nil {
		t.Fatal("Pack accepted empty entry list")
	}
	if _, err := s.Pack("m", []PackEntry{{Name: "w", Enc: e}, {Name: "w", Enc: e}}); err == nil {
		t.Fatal("Pack accepted duplicate tensor name")
	}
	if _, err := s.Pack("m", []PackEntry{{Name: "w", Params: []string{"p0"}, Enc: e}}); err == nil {
		t.Fatal("Pack accepted param list shorter than the stack")
	}

	if _, err := s.Pack("m", []PackEntry{{Name: "w", Enc: e}}); err != nil {
		t.Fatalf("Pack: %v", err)
	}

	// Bit-rot a chunk blob on disk: the content re-hash must catch it.
	man, err := s.Manifest("m")
	if err != nil {
		t.Fatalf("Manifest: %v", err)
	}
	victim := man.Tensors[0].Chunks[0].Hash
	path := filepath.Join(s.Root(), "chunks", victim[:2], victim)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read blob: %v", err)
	}
	blob[len(blob)/2] ^= 0x40
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatalf("write blob: %v", err)
	}
	if _, err := s.Fetch("m"); !errors.Is(err, codec.ErrChecksum) {
		t.Fatalf("Fetch of bit-rotted blob: %v, want ErrChecksum", err)
	}

	// Delete it instead: ErrNotFound.
	if err := os.Remove(path); err != nil {
		t.Fatalf("remove blob: %v", err)
	}
	if _, err := s.Fetch("m"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Fetch with missing blob: %v, want ErrNotFound", err)
	}
}

// TestModelLRU pins the cache contract: exact decode results, hit/miss/evict
// accounting, and resident bytes never exceeding the budget.
func TestModelLRU(t *testing.T) {
	reg := obs.NewRegistry()
	s := openStore(t, reg)
	stack := testStack(11, 4, 64, 128)
	e := encodeStack(t, stack)
	params := []string{"l0.w", "l1.w", "l2.w", "l3.w"}
	if _, err := s.Pack("m", []PackEntry{{Name: "w", Params: params, Enc: e}}); err != nil {
		t.Fatalf("Pack: %v", err)
	}
	opts := testOptions(2)
	want, err := opts.DecodeStack(e)
	if err != nil {
		t.Fatalf("DecodeStack: %v", err)
	}
	layerBytes := int64(64 * 128 * 4)

	m, err := s.OpenModel("m", opts, 2*layerBytes)
	if err != nil {
		t.Fatalf("OpenModel: %v", err)
	}
	if got := m.Stats().CompressedBytes; got != int64(len(e.Stream)) {
		t.Fatalf("CompressedBytes = %d, want %d", got, len(e.Stream))
	}

	check := func(layer int) {
		t.Helper()
		got, err := m.Layer("w", layer)
		if err != nil {
			t.Fatalf("Layer(%d): %v", layer, err)
		}
		for i := range want[layer].Data {
			if got.Data[i] != want[layer].Data[i] {
				t.Fatalf("layer %d value %d differs from full decode", layer, i)
			}
		}
	}
	// Budget holds 2 layers: 0 miss, 0 hit, 1 miss, 2 miss evicts 0,
	// 0 miss evicts 1.
	for _, l := range []int{0, 0, 1, 2, 0} {
		check(l)
	}
	st := m.Stats()
	if st.Hits != 1 || st.Misses != 4 || st.Evictions != 2 {
		t.Fatalf("stats = %+v, want 1 hit / 4 misses / 2 evictions", st)
	}
	if st.ResidentBytes != 2*layerBytes || st.MaxResidentBytes != 2*layerBytes {
		t.Fatalf("resident %d / max %d, want both %d", st.ResidentBytes, st.MaxResidentBytes, 2*layerBytes)
	}
	if counter(reg, "store.lru.hits") != 1 || counter(reg, "store.lru.misses") != 4 ||
		counter(reg, "store.lru.evictions") != 2 {
		t.Fatalf("lru metrics = %+v", reg.Snapshot().Counters)
	}
	if g := reg.Snapshot().Gauges["store.lru.resident_bytes"]; g != 2*layerBytes {
		t.Fatalf("resident gauge = %d, want %d", g, 2*layerBytes)
	}

	// Param names resolve to the same cached layers (layer 0 is resident).
	pt, err := m.Param("l0.w")
	if err != nil {
		t.Fatalf("Param: %v", err)
	}
	if pt.Data[0] != want[0].Data[0] {
		t.Fatal("Param returned wrong layer")
	}
	if got := m.Stats().Hits; got != 2 {
		t.Fatalf("Param on resident layer did not hit: hits = %d", got)
	}
	if _, err := m.Param("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Param(nope): %v", err)
	}
	if _, err := m.Layer("nope", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Layer(nope): %v", err)
	}
	if _, err := m.Layer("w", 99); err == nil {
		t.Fatal("Layer(99) accepted")
	}
	if got := m.Params(); len(got) != 4 || got[0] != "l0.w" {
		t.Fatalf("Params = %v", got)
	}

	// A budget smaller than one layer serves correctly but caches nothing.
	tiny, err := s.OpenModel("m", opts, layerBytes-1)
	if err != nil {
		t.Fatalf("OpenModel tiny: %v", err)
	}
	for _, l := range []int{0, 0} {
		if _, err := tiny.Layer("w", l); err != nil {
			t.Fatalf("tiny Layer: %v", err)
		}
	}
	if st := tiny.Stats(); st.Hits != 0 || st.ResidentBytes != 0 || st.Evictions != 0 {
		t.Fatalf("tiny-budget stats = %+v, want nothing cached", st)
	}

	// Budget <= 0 is unbounded: everything stays resident.
	all, err := s.OpenModel("m", opts, 0)
	if err != nil {
		t.Fatalf("OpenModel unbounded: %v", err)
	}
	for l := 0; l < 4; l++ {
		if _, err := all.Layer("w", l); err != nil {
			t.Fatalf("Layer: %v", err)
		}
	}
	if st := all.Stats(); st.ResidentBytes != 4*layerBytes || st.Evictions != 0 {
		t.Fatalf("unbounded stats = %+v", st)
	}
}

// TestModelConcurrent hammers one Model from many goroutines so the race
// detector can vet the LRU locking, and every result must still be exact.
func TestModelConcurrent(t *testing.T) {
	s := openStore(t, nil)
	stack := testStack(13, 4, 64, 128)
	e := encodeStack(t, stack)
	if _, err := s.Pack("m", []PackEntry{{Name: "w", Enc: e}}); err != nil {
		t.Fatalf("Pack: %v", err)
	}
	opts := testOptions(1)
	want, err := opts.DecodeStack(e)
	if err != nil {
		t.Fatalf("DecodeStack: %v", err)
	}
	m, err := s.OpenModel("m", opts, 2*64*128*4)
	if err != nil {
		t.Fatalf("OpenModel: %v", err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				l := (g + i) % 4
				got, err := m.Layer("w", l)
				if err != nil {
					errc <- err
					return
				}
				if got.Data[17] != want[l].Data[17] {
					errc <- errors.New("concurrent Layer returned wrong data")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Hits+st.Misses != 8*20 {
		t.Fatalf("stats lost lookups: %+v", st)
	}
	if st.MaxResidentBytes > 2*64*128*4 {
		t.Fatalf("budget exceeded under concurrency: %+v", st)
	}
}

// TestManifestStitchValidation pins that a manifest gluing the wrong blobs
// together fails the strict re-parse instead of surviving to decode time.
func TestManifestStitchValidation(t *testing.T) {
	s := openStore(t, nil)
	e := encodeStack(t, testStack(5, 5, 64, 128))
	if _, err := s.Pack("m", []PackEntry{{Name: "w", Enc: e}}); err != nil {
		t.Fatalf("Pack: %v", err)
	}
	path := filepath.Join(s.Root(), "manifests", "m.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read manifest: %v", err)
	}

	// Swap the first two chunk refs: each blob still verifies against its own
	// hash, but the reassembled container no longer parses.
	man, err := s.Manifest("m")
	if err != nil {
		t.Fatalf("Manifest: %v", err)
	}
	tm := &man.Tensors[0]
	if len(tm.Chunks) < 2 {
		t.Fatalf("need >= 2 chunks, got %d", len(tm.Chunks))
	}
	tm.Chunks[0], tm.Chunks[1] = tm.Chunks[1], tm.Chunks[0]
	if _, err := s.Pack("m2", nil); err == nil {
		t.Fatal("sanity: empty pack accepted")
	}
	// Write the shuffled manifest by hand.
	shuffled, err := os.CreateTemp(filepath.Dir(path), "m2-*.json")
	if err != nil {
		t.Fatalf("temp: %v", err)
	}
	man.Model = "m2"
	raw, _ := json.MarshalIndent(man, "", "  ")
	if _, err := shuffled.Write(raw); err != nil {
		t.Fatalf("write: %v", err)
	}
	shuffled.Close()
	if err := os.Rename(shuffled.Name(), filepath.Join(s.Root(), "manifests", "m2.json")); err != nil {
		t.Fatalf("rename: %v", err)
	}
	if _, err := s.Fetch("m2"); err == nil {
		t.Fatal("Fetch accepted a manifest with shuffled chunk order")
	}

	// A syntactically broken manifest is ErrCorrupt.
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatalf("truncate manifest: %v", err)
	}
	if _, err := s.Manifest("m"); !errors.Is(err, codec.ErrCorrupt) {
		t.Fatalf("truncated manifest: %v, want ErrCorrupt", err)
	}
}
