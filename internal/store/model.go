// Model: low-memory inference straight from a packed store.
//
// A Model keeps each tensor's *compressed* container resident (fetched once
// from the store) and materializes decoded layers on demand through an LRU
// bounded by a byte budget — the vqLLM-style serving mode where the decoded
// working set, not the whole checkpoint, determines memory. Layer decodes go
// through core.DecodeLayer, so only the chunks covering the requested layer
// are entropy-decoded (O(region), DESIGN.md §15).
//
// LRU policy: entries are decoded layers costing Rows*Cols*4 bytes each.
// A lookup hit refreshes recency; a miss decodes, then evicts from the cold
// end until the new entry fits the budget before inserting, so resident
// bytes never exceed the budget. A layer larger than the whole budget is
// returned un-cached (the caller still gets its tensor; the cache just
// cannot help). Budget <= 0 means unbounded.
package store

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/core"
)

// layerKey identifies one cached decoded layer.
type layerKey struct {
	tensor string
	layer  int
}

// cacheEntry is one resident decoded layer.
type cacheEntry struct {
	key   layerKey
	t     *core.Tensor
	bytes int64
}

// paramAddr locates a named parameter inside the packed model.
type paramAddr struct {
	tensor string
	layer  int
}

// CacheStats is a point-in-time view of a Model's LRU.
type CacheStats struct {
	Hits, Misses, Evictions int64
	ResidentBytes           int64 // decoded layers currently cached
	MaxResidentBytes        int64 // high-water mark of ResidentBytes
	CompressedBytes         int64 // resident compressed containers (all tensors)
}

// Model serves decoded layers from a packed model under a byte budget.
// Methods are safe for concurrent use; decodes are serialized under the
// model lock, trading parallel-decode throughput for a strict budget bound.
type Model struct {
	man    *Manifest
	opts   core.Options
	budget int64
	m      *storeMetrics

	mu       sync.Mutex
	enc      map[string]*core.Encoded
	byParam  map[string]paramAddr
	lru      *list.List // *cacheEntry, front = most recent
	idx      map[layerKey]*list.Element
	stats    CacheStats
	resident int64
}

// OpenModel fetches every tensor of a packed model (compressed bytes only —
// no decoding) and returns a Model serving decoded layers under
// budgetBytes. opts configures decoding (workers, metrics); its encode-side
// fields are ignored.
func (s *Store) OpenModel(model string, opts core.Options, budgetBytes int64) (*Model, error) {
	man, err := s.Manifest(model)
	if err != nil {
		return nil, err
	}
	m := &Model{
		man:     man,
		opts:    opts,
		budget:  budgetBytes,
		m:       s.m,
		enc:     make(map[string]*core.Encoded, len(man.Tensors)),
		byParam: map[string]paramAddr{},
		lru:     list.New(),
		idx:     map[layerKey]*list.Element{},
	}
	for i := range man.Tensors {
		tm := &man.Tensors[i]
		e, err := s.fetchTensor(tm)
		if err != nil {
			return nil, err
		}
		m.enc[tm.Name] = e
		m.stats.CompressedBytes += int64(len(e.Stream))
		for l, p := range tm.Params {
			if _, dup := m.byParam[p]; dup {
				return nil, fmt.Errorf("store: model %q maps param %q twice", model, p)
			}
			m.byParam[p] = paramAddr{tensor: tm.Name, layer: l}
		}
	}
	return m, nil
}

// Manifest returns the model's manifest.
func (m *Model) Manifest() *Manifest { return m.man }

// Layer returns the decoded layer, from cache when resident.
func (m *Model) Layer(tensor string, layer int) (*core.Tensor, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.enc[tensor]
	if !ok {
		return nil, fmt.Errorf("store: tensor %q: %w", tensor, ErrNotFound)
	}
	key := layerKey{tensor: tensor, layer: layer}
	if el, ok := m.idx[key]; ok {
		m.lru.MoveToFront(el)
		m.stats.Hits++
		if m.m != nil {
			m.m.hits.Inc()
		}
		return el.Value.(*cacheEntry).t, nil
	}
	m.stats.Misses++
	if m.m != nil {
		m.m.misses.Inc()
	}
	t, err := m.opts.DecodeLayer(e, layer)
	if err != nil {
		return nil, err
	}
	cost := int64(e.Rows) * int64(e.Cols) * 4
	if m.budget > 0 && cost > m.budget {
		return t, nil // larger than the whole budget: serve un-cached
	}
	// Evict before inserting so resident bytes never overshoot the budget.
	for m.budget > 0 && m.resident+cost > m.budget {
		back := m.lru.Back()
		if back == nil {
			break
		}
		ev := m.lru.Remove(back).(*cacheEntry)
		delete(m.idx, ev.key)
		m.resident -= ev.bytes
		m.stats.Evictions++
		if m.m != nil {
			m.m.evictions.Inc()
		}
	}
	m.idx[key] = m.lru.PushFront(&cacheEntry{key: key, t: t, bytes: cost})
	m.resident += cost
	m.stats.ResidentBytes = m.resident
	if m.resident > m.stats.MaxResidentBytes {
		m.stats.MaxResidentBytes = m.resident
	}
	if m.m != nil {
		m.m.residentBytes.Set(m.resident)
	}
	return t, nil
}

// Param returns the decoded tensor layer holding the named model parameter
// (packed via PackEntry.Params).
func (m *Model) Param(name string) (*core.Tensor, error) {
	m.mu.Lock()
	addr, ok := m.byParam[name]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("store: param %q: %w", name, ErrNotFound)
	}
	return m.Layer(addr.tensor, addr.layer)
}

// Params lists every parameter name the model maps, in manifest order.
func (m *Model) Params() []string {
	var names []string
	for _, tm := range m.man.Tensors {
		names = append(names, tm.Params...)
	}
	return names
}

// Stats returns a snapshot of the cache counters.
func (m *Model) Stats() CacheStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.stats
	st.ResidentBytes = m.resident
	return st
}
