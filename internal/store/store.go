// Package store is the content-addressed chunk store behind `llm265 pack`
// and `llm265 fetch` (DESIGN.md §15): compressed checkpoints split into
// codec chunks, each blob keyed by the SHA-256 of its bytes, deduplicated
// across checkpoints, with one JSON manifest per model naming the blobs that
// reassemble each tensor stack byte-identically.
//
// Layout under the store root:
//
//	chunks/<hh>/<sha256-hex>   blob files, fanned out by the first hash byte
//	manifests/<model>.json     per-model manifest
//
// Why chunk granularity: the codec's chunks are independent substreams with
// stable boundaries (a pure function of plane geometry and tool set), so two
// checkpoints sharing unchanged layers produce bit-identical chunk blobs and
// the store keeps one copy — the ZipServ-style dedup that makes multi-model
// serving affordable. The indexed v3 trailer (codec.Layout) is what lets
// Pack split a container without decoding it, and lets a fetched model serve
// single layers through an LRU of decoded tensors (see Model).
//
// Integrity: a blob's name is its hash, re-verified on every read, so
// bit-rot surfaces as ErrChecksum; reassembly is byte-exact, so the codec's
// own CRCs re-verify end to end on decode.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/obs"
)

// ErrNotFound reports a missing model or blob.
var ErrNotFound = errors.New("store: not found")

// BlobRef names one content-addressed blob.
type BlobRef struct {
	Hash   string `json:"hash"` // SHA-256 of the blob bytes, lowercase hex
	Length int    `json:"length"`
}

// ChunkRef is a BlobRef plus the chunk's place in its container, copied from
// the codec's chunk index so a reader can map layers to blobs without
// touching the container.
type ChunkRef struct {
	BlobRef
	CRC        uint32 `json:"crc32c"`
	PlaneBase  int    `json:"plane_base"`
	PlaneCount int    `json:"plane_count"`
}

// TensorMeta mirrors core.Encoded's metadata so Fetch can rebuild the exact
// Encoded without any side channel.
type TensorMeta struct {
	Layers    int       `json:"layers"`
	Rows      int       `json:"rows"`
	Cols      int       `json:"cols"`
	PerRow    bool      `json:"per_row,omitempty"`
	MaxFrameW int       `json:"max_frame_w"`
	MaxFrameH int       `json:"max_frame_h"`
	QP        int       `json:"qp"`
	Scales    []float32 `json:"scales"`
	Zeros     []float32 `json:"zeros"`
}

// TensorManifest describes one packed tensor stack: its metadata, and the
// header/chunk/trailer blobs that concatenate back into its container.
type TensorManifest struct {
	Name string `json:"name"`
	// Params optionally names the model parameter stored at each layer
	// (layer i holds Params[i]), for stores packed from nn checkpoints.
	Params  []string   `json:"params,omitempty"`
	Meta    TensorMeta `json:"meta"`
	Header  BlobRef    `json:"header"`
	Chunks  []ChunkRef `json:"chunks"`
	Trailer BlobRef    `json:"trailer"` // zero-valued when the container has no trailer
}

// Manifest is one model's packed inventory.
type Manifest struct {
	Model   string           `json:"model"`
	Tensors []TensorManifest `json:"tensors"`
}

// Tensor returns the named tensor's manifest entry, or nil.
func (m *Manifest) Tensor(name string) *TensorManifest {
	for i := range m.Tensors {
		if m.Tensors[i].Name == name {
			return &m.Tensors[i]
		}
	}
	return nil
}

// PackedBytes sums the container bytes of every tensor (before dedup).
func (m *Manifest) PackedBytes() int64 {
	var n int64
	for _, tm := range m.Tensors {
		n += int64(tm.Header.Length) + int64(tm.Trailer.Length)
		for _, c := range tm.Chunks {
			n += int64(c.Length)
		}
	}
	return n
}

// storeMetrics holds the pre-resolved store.* handles; nil disables them.
type storeMetrics struct {
	packBlobs, packBlobsNew *obs.Counter
	packBytes, packBytesNew *obs.Counter
	fetchBlobs, fetchBytes  *obs.Counter
	hits, misses, evictions *obs.Counter
	residentBytes           *obs.Gauge
}

func newStoreMetrics(reg *obs.Registry) *storeMetrics {
	if reg == nil {
		return nil
	}
	return &storeMetrics{
		packBlobs:     reg.Counter("store.pack.blobs"),
		packBlobsNew:  reg.Counter("store.pack.blobs_new"),
		packBytes:     reg.Counter("store.pack.bytes"),
		packBytesNew:  reg.Counter("store.pack.bytes_new"),
		fetchBlobs:    reg.Counter("store.fetch.blobs"),
		fetchBytes:    reg.Counter("store.fetch.bytes"),
		hits:          reg.Counter("store.lru.hits"),
		misses:        reg.Counter("store.lru.misses"),
		evictions:     reg.Counter("store.lru.evictions"),
		residentBytes: reg.Gauge("store.lru.resident_bytes"),
	}
}

// Store is a content-addressed chunk store rooted at a directory.
type Store struct {
	root string
	m    *storeMetrics
}

// Open opens (creating if needed) a store rooted at dir. Metrics are
// recorded into reg (nil = none) under the store.* names.
func Open(dir string, reg *obs.Registry) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty root")
	}
	for _, sub := range []string{"chunks", "manifests"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return &Store{root: dir, m: newStoreMetrics(reg)}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// checkName rejects model/tensor names that would escape the store
// directories or collide with path syntax.
func checkName(kind, name string) error {
	if name == "" || strings.ContainsAny(name, "/\\") || name == "." || name == ".." {
		return fmt.Errorf("store: invalid %s name %q", kind, name)
	}
	return nil
}

func (s *Store) blobPath(hash string) string {
	return filepath.Join(s.root, "chunks", hash[:2], hash)
}

// putBlob writes data under its content hash, returning the ref. An existing
// blob is the dedup hit: nothing is written (the name proves the content).
func (s *Store) putBlob(data []byte) (BlobRef, error) {
	sum := sha256.Sum256(data)
	hash := hex.EncodeToString(sum[:])
	ref := BlobRef{Hash: hash, Length: len(data)}
	if s.m != nil {
		s.m.packBlobs.Inc()
		s.m.packBytes.Add(int64(len(data)))
	}
	path := s.blobPath(hash)
	if _, err := os.Stat(path); err == nil {
		return ref, nil // dedup: content already stored
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return BlobRef{}, fmt.Errorf("store: %w", err)
	}
	// Temp-file + rename keeps concurrent packers from observing partial
	// blobs; the content address makes double-writes idempotent.
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return BlobRef{}, fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return BlobRef{}, fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return BlobRef{}, fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return BlobRef{}, fmt.Errorf("store: %w", err)
	}
	if s.m != nil {
		s.m.packBlobsNew.Inc()
		s.m.packBytesNew.Add(int64(len(data)))
	}
	return ref, nil
}

// getBlob reads a blob and re-verifies its content hash, so on-disk bit-rot
// is ErrChecksum, not silent corruption.
func (s *Store) getBlob(ref BlobRef) ([]byte, error) {
	if len(ref.Hash) != 64 {
		return nil, fmt.Errorf("store: malformed blob hash %q: %w", ref.Hash, codec.ErrCorrupt)
	}
	data, err := os.ReadFile(s.blobPath(ref.Hash))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("store: blob %s: %w", ref.Hash[:12], ErrNotFound)
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != ref.Hash || len(data) != ref.Length {
		return nil, fmt.Errorf("store: blob %s content mismatch: %w", ref.Hash[:12], codec.ErrChecksum)
	}
	if s.m != nil {
		s.m.fetchBlobs.Inc()
		s.m.fetchBytes.Add(int64(len(data)))
	}
	return data, nil
}

// PackEntry is one tensor stack to pack: a name unique within the model, the
// optional per-layer parameter names, and the encode itself.
type PackEntry struct {
	Name   string
	Params []string
	Enc    *core.Encoded
}

// Pack splits each entry's container into content-addressed blobs and writes
// the model's manifest. Chunks identical across models (or across entries)
// are stored once — the manifest records hashes, not copies. Packing the
// same model name again overwrites its manifest (blobs are never deleted).
func (s *Store) Pack(model string, entries []PackEntry) (*Manifest, error) {
	if err := checkName("model", model); err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, errors.New("store: nothing to pack")
	}
	man := &Manifest{Model: model}
	seen := map[string]bool{}
	for _, ent := range entries {
		if err := checkName("tensor", ent.Name); err != nil {
			return nil, err
		}
		if seen[ent.Name] {
			return nil, fmt.Errorf("store: duplicate tensor name %q", ent.Name)
		}
		seen[ent.Name] = true
		e := ent.Enc
		if ent.Params != nil && len(ent.Params) != e.Layers {
			return nil, fmt.Errorf("store: %d param names for %d layers of %q", len(ent.Params), e.Layers, ent.Name)
		}
		lay, err := codec.Layout(e.Stream)
		if err != nil {
			return nil, fmt.Errorf("store: tensor %q: %w", ent.Name, err)
		}
		tm := TensorManifest{
			Name:   ent.Name,
			Params: ent.Params,
			Meta: TensorMeta{
				Layers: e.Layers, Rows: e.Rows, Cols: e.Cols,
				PerRow:    e.PerRow,
				MaxFrameW: e.MaxFrameW, MaxFrameH: e.MaxFrameH,
				QP:     e.QP,
				Scales: e.Scales, Zeros: e.Zeros,
			},
		}
		if tm.Header, err = s.putBlob(e.Stream[:lay.HeaderLen]); err != nil {
			return nil, err
		}
		for _, ce := range lay.Entries {
			ref, err := s.putBlob(e.Stream[ce.Offset : ce.Offset+int64(ce.Length)])
			if err != nil {
				return nil, err
			}
			tm.Chunks = append(tm.Chunks, ChunkRef{
				BlobRef: ref, CRC: ce.CRC, PlaneBase: ce.PlaneBase, PlaneCount: ce.PlaneCount,
			})
		}
		if lay.TrailerLen > 0 {
			if tm.Trailer, err = s.putBlob(e.Stream[lay.TrailerOff:]); err != nil {
				return nil, err
			}
		}
		man.Tensors = append(man.Tensors, tm)
	}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(s.root, "manifests", model+".json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return nil, fmt.Errorf("store: %w", err)
	}
	return man, nil
}

// Manifest loads a model's manifest.
func (s *Store) Manifest(model string) (*Manifest, error) {
	if err := checkName("model", model); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(s.root, "manifests", model+".json"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("store: model %q: %w", model, ErrNotFound)
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	man := &Manifest{}
	if err := json.Unmarshal(data, man); err != nil {
		return nil, fmt.Errorf("store: manifest %q: %v: %w", model, err, codec.ErrCorrupt)
	}
	return man, nil
}

// Models lists the packed model names, sorted.
func (s *Store) Models() ([]string, error) {
	ents, err := os.ReadDir(filepath.Join(s.root, "manifests"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var names []string
	for _, de := range ents {
		if n, ok := strings.CutSuffix(de.Name(), ".json"); ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// fetchTensor reassembles one tensor's container from its blobs,
// byte-identical to what Pack was handed.
func (s *Store) fetchTensor(tm *TensorManifest) (*core.Encoded, error) {
	size := tm.Header.Length + tm.Trailer.Length
	for _, c := range tm.Chunks {
		size += c.Length
	}
	stream := make([]byte, 0, size)
	head, err := s.getBlob(tm.Header)
	if err != nil {
		return nil, err
	}
	stream = append(stream, head...)
	for _, c := range tm.Chunks {
		blob, err := s.getBlob(c.BlobRef)
		if err != nil {
			return nil, err
		}
		stream = append(stream, blob...)
	}
	if tm.Trailer.Hash != "" {
		blob, err := s.getBlob(tm.Trailer)
		if err != nil {
			return nil, err
		}
		stream = append(stream, blob...)
	}
	e := &core.Encoded{
		Layers: tm.Meta.Layers, Rows: tm.Meta.Rows, Cols: tm.Meta.Cols,
		PerRow:    tm.Meta.PerRow,
		MaxFrameW: tm.Meta.MaxFrameW, MaxFrameH: tm.Meta.MaxFrameH,
		QP:     tm.Meta.QP,
		Scales: tm.Meta.Scales, Zeros: tm.Meta.Zeros,
		Stream: stream,
	}
	// The reassembled container must still parse strictly — a manifest
	// stitching mismatched blobs (wrong order, wrong model) fails here with
	// a typed error rather than surviving to decode time.
	if _, err := codec.Layout(stream); err != nil {
		return nil, fmt.Errorf("store: tensor %q reassembly: %w", tm.Name, err)
	}
	return e, nil
}

// Fetch reassembles every tensor of a model, keyed by tensor name. Each
// stream is byte-identical to the one packed.
func (s *Store) Fetch(model string) (map[string]*core.Encoded, error) {
	man, err := s.Manifest(model)
	if err != nil {
		return nil, err
	}
	out := make(map[string]*core.Encoded, len(man.Tensors))
	for i := range man.Tensors {
		tm := &man.Tensors[i]
		e, err := s.fetchTensor(tm)
		if err != nil {
			return nil, err
		}
		out[tm.Name] = e
	}
	return out, nil
}

// Stats reports physical store occupancy: unique blobs and their byte total.
func (s *Store) Stats() (blobs int, bytes int64, err error) {
	root := filepath.Join(s.root, "chunks")
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		blobs++
		bytes += info.Size()
		return nil
	})
	if err != nil {
		return 0, 0, fmt.Errorf("store: %w", err)
	}
	return blobs, bytes, nil
}
