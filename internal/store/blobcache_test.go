package store

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestBlobCacheRefcounting: interning the same bytes twice charges once,
// bytes survive until the last reference is released, and the freed total
// equals exactly what was charged.
func TestBlobCacheRefcounting(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewBlobCache(reg)

	blob := []byte("the same compressed chunk")
	k1, added := c.Put(blob)
	if !added {
		t.Fatal("first Put reported no new bytes")
	}
	k2, added := c.Put(blob)
	if added || k1 != k2 {
		t.Fatalf("second Put: added=%v, key match=%v", added, k1 == k2)
	}
	if c.Bytes() != int64(len(blob)) || c.Blobs() != 1 {
		t.Fatalf("resident = %d bytes / %d blobs, want %d / 1", c.Bytes(), c.Blobs(), len(blob))
	}

	got, ok := c.Ref(k1)
	if !ok || !bytes.Equal(got, blob) {
		t.Fatalf("Ref = %q, %v", got, ok)
	}
	// Three references: two Puts, one Ref. The first two releases free
	// nothing; the last frees the blob.
	if f := c.Release(k1); f != 0 {
		t.Fatalf("release 1 freed %d", f)
	}
	if f := c.Release(k1); f != 0 {
		t.Fatalf("release 2 freed %d", f)
	}
	if f := c.Release(k1); f != int64(len(blob)) {
		t.Fatalf("final release freed %d, want %d", f, len(blob))
	}
	if c.Bytes() != 0 || c.Blobs() != 0 {
		t.Fatalf("cache not empty after final release: %d bytes / %d blobs", c.Bytes(), c.Blobs())
	}
	if _, ok := c.Ref(k1); ok {
		t.Fatal("Ref succeeded on a fully released key")
	}
	// Releasing an unknown key is a tolerated no-op.
	if f := c.Release(k1); f != 0 {
		t.Fatalf("release of unknown key freed %d", f)
	}

	snap := reg.Snapshot()
	if snap.Gauges["store.blobcache.bytes"] != 0 || snap.Gauges["store.blobcache.blobs"] != 0 {
		t.Fatalf("gauges not zeroed: %+v", snap.Gauges)
	}
	if snap.Counters["store.blobcache.frees"] != 1 {
		t.Fatalf("frees = %d, want 1", snap.Counters["store.blobcache.frees"])
	}
}

// TestBlobCacheConcurrent hammers Put/Ref/Release from many goroutines over
// a small keyspace (run under -race via store-test) and checks the final
// accounting is exact: every taken reference released leaves an empty cache.
func TestBlobCacheConcurrent(t *testing.T) {
	c := NewBlobCache(nil)
	const workers, rounds, keys = 16, 200, 7
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				blob := []byte(fmt.Sprintf("blob-%d", (w+i)%keys))
				k, _ := c.Put(blob)
				if data, ok := c.Ref(k); !ok || !bytes.Equal(data, blob) {
					t.Errorf("Ref lost blob %q", blob)
					return
				}
				c.Release(k)
				c.Release(k)
			}
		}(w)
	}
	wg.Wait()
	if c.Bytes() != 0 || c.Blobs() != 0 {
		t.Fatalf("cache leaked: %d bytes / %d blobs", c.Bytes(), c.Blobs())
	}
}
