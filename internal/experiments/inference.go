package experiments

import (
	"fmt"
	"math"

	"repro/internal/baselines"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/nn"
	"repro/internal/nvcodec"
	"repro/internal/quant"
)

// captureCalibration runs forward passes and collects each linear layer's
// inputs — the calibration sets GPTQ and AWQ depend on (and LLM.265 does
// not, which is the versatility claim).
func captureCalibration(ctx *Ctx, modelName string, batches int) map[string]*nn.Mat {
	m := ctx.Model(modelName)
	corpus := ctx.Corpus()
	linears := llm.LinearsByName(m)
	acc := map[string]*nn.Mat{}
	rng := newRng(77)
	for b := 0; b < batches; b++ {
		tokens, _ := corpus.Batch(rng, 4, m.Cfg.SeqLen)
		m.Forward(tokens)
		for name, lin := range linears {
			x := lin.CachedInput()
			if x == nil {
				continue
			}
			if acc[name] == nil {
				acc[name] = x.Clone()
			} else if acc[name].R < 512 {
				merged := nn.NewMat(acc[name].R+x.R, x.C)
				copy(merged.V, acc[name].V)
				copy(merged.V[len(acc[name].V):], x.V)
				acc[name] = merged
			}
		}
	}
	return acc
}

func gptqCompressor(calib map[string]*nn.Mat, bits, group int) llm.WeightCompressor {
	return func(name string, w *nn.Mat) (*nn.Mat, float64, error) {
		x, ok := calib[name]
		if !ok {
			rec, bpv := quant.RTNGroupwise(w.V, bits, groupOrWhole(group, len(w.V)))
			out := nn.NewMat(w.R, w.C)
			copy(out.V, rec)
			return out, bpv, nil
		}
		return baselines.GPTQ(w, x, bits, group)
	}
}

func awqCompressor(calib map[string]*nn.Mat, bits, group int) llm.WeightCompressor {
	return func(name string, w *nn.Mat) (*nn.Mat, float64, error) {
		x, ok := calib[name]
		if !ok {
			rec, bpv := quant.RTNGroupwise(w.V, bits, groupOrWhole(group, len(w.V)))
			out := nn.NewMat(w.R, w.C)
			copy(out.V, rec)
			return out, bpv, nil
		}
		return baselines.AWQ(w, x, bits, group)
	}
}

func rtnCompressor(bits, group int) llm.WeightCompressor {
	return func(_ string, w *nn.Mat) (*nn.Mat, float64, error) {
		rec, bpv := quant.RTNGroupwise(w.V, bits, groupOrWhole(group, len(w.V)))
		out := nn.NewMat(w.R, w.C)
		copy(out.V, rec)
		return out, bpv, nil
	}
}

func groupOrWhole(group, n int) int {
	if group <= 0 {
		return n
	}
	return group
}

// evalCompressed compresses the model with c, measures mean task accuracy,
// then restores the weights. It returns the achieved average bits.
func evalCompressed(ctx *Ctx, modelName string, c llm.WeightCompressor) (bits, acc float64) {
	m := ctx.Model(modelName)
	snap := llm.SnapshotWeights(m)
	defer llm.RestoreWeights(m, snap)
	bits, err := llm.CompressModel(m, c)
	if err != nil {
		panic(err)
	}
	_, acc = llm.EvalTasks(m, ctx.Tasks())
	return bits, acc
}

// Fig5 sweeps accuracy against average bit-width for LLM.265 (variable and
// fixed bitrate) vs GPTQ, AWQ and RTN on the 7B-class stand-in.
func Fig5(ctx *Ctx) *Table {
	modelName := "llama-mini"
	m := ctx.Model(modelName)
	_, baseAcc := llm.EvalTasks(m, ctx.Tasks())
	calib := captureCalibration(ctx, modelName, 4)

	t := &Table{
		ID:      "fig5",
		Title:   "Accuracy vs average bit-width (uncompressed accuracy: " + f2(baseAcc) + ")",
		Columns: []string{"method", "bits/value", "accuracy", "normalized"},
	}
	add := func(method string, bits, acc float64) {
		t.AddRow(method, f2(bits), f2(acc), f2(acc/baseAcc))
	}

	budgets := []float64{1.2, 1.6, 2.0, 2.5, 3.0, 4.0}
	if ctx.Quick {
		budgets = []float64{1.6, 2.5, 3.5}
	}
	opts := core.DefaultOptions()
	for _, b := range budgets {
		bits, acc := evalCompressed(ctx, modelName, llm.LLM265WeightCompressor(opts, b))
		add("LLM.265 (fixed)", bits, acc)
	}
	// Variable bitrate: search the per-layer slope with a cheap perplexity
	// objective, then evaluate the winner on the tasks.
	ks := []float64{-0.2, 0, 0.2}
	if ctx.Quick {
		ks = []float64{0, 0.2}
	}
	for _, b := range budgets {
		sched, _, err := core.SearchVariableSchedule(m.Cfg.Layers, b, ks, func(budgets []float64) float64 {
			snap := llm.SnapshotWeights(m)
			defer llm.RestoreWeights(m, snap)
			if _, err := llm.CompressModel(m, llm.LLM265VariableCompressor(opts, budgets)); err != nil {
				panic(err)
			}
			return llm.Perplexity(m, ctx.Corpus(), 3)
		})
		if err != nil {
			panic(err)
		}
		bits, acc := evalCompressed(ctx, modelName, llm.LLM265VariableCompressor(opts, sched))
		add("LLM.265 (variable)", bits, acc)
	}

	intBits := []int{2, 3, 4}
	if ctx.Quick {
		intBits = []int{3}
	}
	for _, b := range intBits {
		bits, acc := evalCompressed(ctx, modelName, gptqCompressor(calib, b, 0))
		add("GPTQ", bits, acc)
		bits, acc = evalCompressed(ctx, modelName, awqCompressor(calib, b, 0))
		add("AWQ", bits, acc)
		bits, acc = evalCompressed(ctx, modelName, rtnCompressor(b, 0))
		add("RTN", bits, acc)
	}
	t.Notes = append(t.Notes,
		"paper Fig. 5: LLM.265 holds accuracy to ~3 bits and degrades gracefully below; GPTQ/AWQ need ~4.25 bits and collapse under 3",
		"variable bitrate should match or beat fixed at equal budget, most visibly below 3 bits")
	return t
}

// Table1 reproduces the 70B-class comparison at ~3 bits on three tasks.
func Table1(ctx *Ctx) *Table {
	modelName := "llama-mid"
	m := ctx.Model(modelName)
	tasks := ctx.Tasks()
	pick := tasks[:3] // stand-ins for PIQA / WinoGrande / HellaSwag
	calib := captureCalibration(ctx, modelName, 4)

	t := &Table{
		ID:      "table1",
		Title:   "70B-class stand-in, ~3-bit weight compression",
		Columns: []string{"avg bits", "algorithm", pick[0].Name, pick[1].Name, pick[2].Name},
	}
	evalRow := func(label string, c llm.WeightCompressor) {
		snap := llm.SnapshotWeights(m)
		defer llm.RestoreWeights(m, snap)
		var bits float64
		if c != nil {
			var err error
			bits, err = llm.CompressModel(m, c)
			if err != nil {
				panic(err)
			}
		} else {
			bits = 16
		}
		accs := make([]string, len(pick))
		for i, task := range pick {
			accs[i] = f2(llm.EvalTask(m, task))
		}
		t.AddRow(f2(bits), label, accs[0], accs[1], accs[2])
	}

	evalRow("- (BF16)", nil)
	// On the substrate's ≤128-row matrices a 128-group spans the whole
	// input dimension, so the "-128G" variants coincide with per-column
	// grids; their metadata (0.44 b/v here vs the paper's 0.25) is charged
	// honestly either way.
	evalRow("GPTQ-128G", gptqCompressor(calib, 3, 128))
	evalRow("AWQ-128G", awqCompressor(calib, 3, 128))
	evalRow("GPTQ", gptqCompressor(calib, 3, 0))
	evalRow("AWQ", awqCompressor(calib, 3, 0))
	evalRow("LLM.265", llm.LLM265WeightCompressor(core.DefaultOptions(), 2.88))
	t.Notes = append(t.Notes, "paper Table 1: LLM.265 at 2.88 bits matches the 3.25-bit group-wise baselines and beats the 3.0-bit per-tensor ones")
	return t
}

// Fig6 compares the three codec profiles at matched bit budgets.
func Fig6(ctx *Ctx) *Table {
	modelName := "llama-mini"
	m := ctx.Model(modelName)
	_, baseAcc := llm.EvalTasks(m, ctx.Tasks())

	budgets := []float64{1.4, 1.8, 2.4, 3.0, 4.0}
	if ctx.Quick {
		budgets = []float64{1.8, 3.0}
	}
	t := &Table{
		ID:      "fig6",
		Title:   "Codec selection (normalized accuracy; uncompressed acc " + f2(baseAcc) + ")",
		Columns: append([]string{"bits/value"}, "H.264", "H.265", "AV1"),
	}
	for _, b := range budgets {
		row := []string{f2(b)}
		for _, prof := range []codec.Profile{codec.H264, codec.HEVC, codec.AV1} {
			opts := core.DefaultOptions()
			opts.Profile = prof
			_, acc := evalCompressed(ctx, modelName, llm.LLM265WeightCompressor(opts, b))
			row = append(row, f2(acc/baseAcc))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "paper Fig. 6: above ~1.8 bits the three codecs overlap within noise")
	return t
}

// Table2 prints the GPU support matrix (paper Table 2).
func Table2(*Ctx) *Table {
	t := &Table{
		ID:      "table2",
		Title:   "GPU support for video codecs",
		Columns: []string{"GPU gen.", "H.264", "H.265", "AV1", "VP9"},
	}
	desc := func(s nvcodec.Support, ok bool) string {
		if !ok {
			return "-"
		}
		res := "4K"
		if s.MaxDim >= 8192 {
			res = "8K"
		}
		switch {
		case s.Encode && s.Decode:
			return res + " Enc/Dec"
		case s.Decode:
			return res + " Dec"
		default:
			return res + " Enc"
		}
	}
	for _, g := range nvcodec.Generations() {
		row := []string{g.Name}
		for _, c := range []string{"H.264", "H.265", "AV1", "VP9"} {
			s, ok := g.Codecs[c]
			row = append(row, desc(s, ok))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig7 applies LLM.265 vs AWQ vs RTN to the other model families.
func Fig7(ctx *Ctx) *Table {
	t := &Table{
		ID:      "fig7",
		Title:   "Model compression across families (mean task accuracy at ~3 bits)",
		Columns: []string{"family", "uncompressed", "LLM.265@2.9", "AWQ@3", "RTN@3"},
	}
	for _, name := range []string{"t5-mini", "vit-mini"} {
		m := ctx.Model(name)
		// Family-specific tasks from the same generator (the readout is
		// what differs across Fig. 7's subplots).
		tasks := llm.GenerateTasks(ctx.Corpus(), int64(len(name)), 24)
		evalAll := func() float64 {
			var sum float64
			for _, task := range tasks {
				sum += llm.EvalTask(m, task)
			}
			return sum / float64(len(tasks))
		}
		base := evalAll()
		run := func(c llm.WeightCompressor) float64 {
			snap := llm.SnapshotWeights(m)
			defer llm.RestoreWeights(m, snap)
			if _, err := llm.CompressModel(m, c); err != nil {
				panic(err)
			}
			return evalAll()
		}
		calib := captureCalibration(ctx, name, 3)
		t.AddRow(name, f2(base),
			f2(run(llm.LLM265WeightCompressor(core.DefaultOptions(), 2.9))),
			f2(run(awqCompressor(calib, 3, 0))),
			f2(run(rtnCompressor(3, 0))))
	}
	t.Notes = append(t.Notes, "paper Fig. 7: LLM.265 surpasses AWQ and RTN across all four task families")
	return t
}

// forwardWithBoundaryCompression runs inference with activations compressed
// at pipeline-stage boundaries (the §4.2 communication compression).
func forwardWithBoundaryCompression(m *nn.Transformer, tokens [][]int, stages int,
	compress func(x *nn.Mat) *nn.Mat) *nn.Mat {
	perStage := len(m.Blocks) / stages
	x := m.EmbedForward(tokens)
	for i := range m.Blocks {
		x = m.BlockForward(i, x)
		if (i+1)%perStage == 0 && i+1 < len(m.Blocks) && compress != nil {
			x = compress(x)
		}
	}
	return m.HeadForward(x)
}

// Fig8 compares KV-cache and boundary-activation compression across RTN,
// rotation-based baselines and LLM.265.
func Fig8(ctx *Ctx) *Table {
	modelName := "llama-mid"
	m := ctx.Model(modelName)
	corpus := ctx.Corpus()
	tasks := ctx.Tasks()[:3]
	stages := 2
	nEval := 8
	if ctx.Quick {
		nEval = 4
	}

	rng := newRng(8)
	rot := baselines.RandomRotation(rng, m.Cfg.Dim)
	rot2 := baselines.RandomRotation(newRng(9), m.Cfg.Dim)

	rtnKV := func(bits int) nn.KVHook {
		return func(_ int, k, v *nn.Mat) (*nn.Mat, *nn.Mat) {
			kq, vq := k.Clone(), v.Clone()
			for i := 0; i < kq.R; i++ {
				copy(kq.Row(i), quant.RTNAsymmetric(k.Row(i), bits))
				copy(vq.Row(i), quant.RTNAsymmetric(v.Row(i), bits))
			}
			return kq, vq
		}
	}
	rotKV := func(r *nn.Mat, bits int) nn.KVHook {
		return func(_ int, k, v *nn.Mat) (*nn.Mat, *nn.Mat) {
			kq, _ := baselines.RotatedRTN(k, r, bits)
			vq, _ := baselines.RotatedRTN(v, r, bits)
			return kq, vq
		}
	}
	actRTN := func(bits int) func(x *nn.Mat) *nn.Mat {
		return func(x *nn.Mat) *nn.Mat {
			out := x.Clone()
			for i := 0; i < out.R; i++ {
				copy(out.Row(i), quant.RTNAsymmetric(x.Row(i), bits))
			}
			return out
		}
	}
	actRot := func(r *nn.Mat, bits int) func(x *nn.Mat) *nn.Mat {
		return func(x *nn.Mat) *nn.Mat {
			out, _ := baselines.RotatedRTN(x, r, bits)
			return out
		}
	}
	actLLM := func(bits float64) func(x *nn.Mat) *nn.Mat {
		rc := core.NewRateController(core.DefaultOptions(), bits)
		return func(x *nn.Mat) *nn.Mat {
			d, _, err := rc.Roundtrip(llm.MatToTensor(x))
			if err != nil {
				return x
			}
			return llm.TensorToMat(d)
		}
	}

	evalCfg := func(kv nn.KVHook, act func(x *nn.Mat) *nn.Mat) (float64, float64) {
		m.SetKVHook(kv)
		defer m.SetKVHook(nil)
		// Perplexity with boundary compression.
		toks, tgts := corpus.ValidBatches(nEval, 4, m.Cfg.SeqLen)
		var nll float64
		var count int
		for i := range toks {
			logits := forwardWithBoundaryCompression(m, toks[i], stages, act)
			loss, _ := nn.LossAndGrad(logits, tgts[i])
			c := 0
			for _, t := range tgts[i] {
				if t >= 0 {
					c++
				}
			}
			nll += loss * float64(c)
			count += c
		}
		ppl := math.Exp(nll / float64(count))
		var acc float64
		for _, task := range tasks {
			acc += llm.EvalTask(m, task)
		}
		return ppl, acc / float64(len(tasks))
	}

	t := &Table{
		ID:      "fig8",
		Title:   "KV-cache + activation compression (ppl lower / acc higher is better)",
		Columns: []string{"config", "perplexity", "Δppl %", "accuracy"},
	}
	basePPL, baseAcc := evalCfg(nil, nil)
	t.AddRow("FP16 baseline", f2(basePPL), "0.0", f2(baseAcc))

	type cfg struct {
		name string
		kv   nn.KVHook
		act  func(x *nn.Mat) *nn.Mat
	}
	cfgs := []cfg{
		{"RTN KV3", rtnKV(3), nil},
		{"SpinQuant KV3", rotKV(rot2, 3), nil},
		{"QuaRot KV3", rotKV(rot, 3), nil},
		{"LLM.265 KV2.9", llm.KVCompressorHook(core.DefaultOptions(), 2.9), nil},
		{"RTN A4", nil, actRTN(4)},
		{"QuaRot A4", nil, actRot(rot, 4)},
		{"LLM.265 A3.5", nil, actLLM(3.5)},
		{"RTN KV3+A4", rtnKV(3), actRTN(4)},
		{"QuaRot KV3+A4", rotKV(rot, 3), actRot(rot, 4)},
		{"LLM.265 KV2.9+A3.5", llm.KVCompressorHook(core.DefaultOptions(), 2.9), actLLM(3.5)},
	}
	for _, c := range cfgs {
		ppl, acc := evalCfg(c.kv, c.act)
		t.AddRow(c.name, f2(ppl), fmt.Sprintf("%.1f", 100*(ppl/basePPL-1)), f2(acc))
	}
	t.Notes = append(t.Notes,
		"paper Fig. 8: LLM.265 at KV 2.9b + A 3.5b costs ~7% perplexity and ~1% accuracy; RTN KV3 nearly destroys the model")
	return t
}
