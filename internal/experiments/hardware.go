package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/entropy"
	"repro/internal/hw"
	"repro/internal/llm"
	"repro/internal/nn"
	"repro/internal/quant"
)

// Fig12 reports the die-area comparison and the codec component breakdowns.
func Fig12(*Ctx) *Table {
	t := &Table{
		ID:      "fig12",
		Title:   "Die area: GPUs, CPU, NIC vs video codecs normalized to 100 Gbps",
		Columns: []string{"device", "area mm²", "vs H.264 pair"},
	}
	pair := hw.H264Enc.AreaMM2 + hw.H264Dec.AreaMM2
	for _, c := range []hw.Component{
		hw.GPURTX3090, hw.GPURTX3090At7, hw.CPUServer, hw.NICMellanoxCX5,
		hw.H264Enc, hw.H264Dec, hw.H265Enc, hw.H265Dec,
	} {
		t.AddRow(c.Name, f2(c.AreaMM2), fmt.Sprintf("%.1fx", c.AreaMM2/pair))
	}
	t.AddRow("H.264 enc+dec pair (100Gbps)", f2(pair), "1.0x")
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d single 4K60 codec instances aggregate to 100 Gb/s", hw.InstancesFor(100)),
		fmt.Sprintf("encoder area breakdown: inter %.0f%%, frame buffer %.0f%%, intra %.0f%%, transform %.0f%%, entropy %.0f%%, misc %.0f%%",
			100*hw.EncoderBreakdown.InterPred, 100*hw.EncoderBreakdown.FrameBuffer,
			100*hw.EncoderBreakdown.IntraPred, 100*hw.EncoderBreakdown.Transform,
			100*hw.EncoderBreakdown.Entropy, 100*hw.EncoderBreakdown.Misc),
		fmt.Sprintf("dropping inter prediction keeps only %.0f%% of the encoder die (tensor-specialized codec)",
			100*hw.EncoderBreakdown.TensorOnlyFraction()))
	return t
}

// Table3 reports energy/area/power of the codecs against NCCL.
func Table3(*Ctx) *Table {
	t := &Table{
		ID:      "table3",
		Title:   "Energy for communication vs compression",
		Columns: []string{"component", "power W", "area mm²", "energy/bit pJ"},
	}
	row := func(c hw.Component) {
		power, area := "-", "-"
		if c.PowerW > 0 {
			power = f2(c.PowerW)
		}
		if c.AreaMM2 > 0 {
			area = f2(c.AreaMM2)
		}
		t.AddRow(c.Name, power, area, f2(c.EnergyPerBitPJ))
	}
	row(hw.NCCLEndToEnd)
	row(hw.H264Enc)
	row(hw.H264Dec)
	row(hw.H265Enc)
	row(hw.H265Dec)
	row(hw.ThreeInOneEnc)
	row(hw.ThreeInOneDec)
	t.Notes = append(t.Notes,
		fmt.Sprintf("three-in-one enc+dec is %.1fx cheaper per bit than NCCL end-to-end", hw.EnergyRatioVsNCCL(hw.ThreeInOneEnc, hw.ThreeInOneDec)),
		fmt.Sprintf("at 5x compression the end-to-end energy win is %.2fx", hw.CompressionEnergyEfficiency(hw.ThreeInOneEnc, hw.ThreeInOneDec, 5)))
	return t
}

// fig14Point is one (bits, MAE) measurement of a chained pipeline. The
// paper's Fig. 14(a) uses mean-absolute-error: unlike MSE (dominated by a
// few spikes), MAE penalizes collapsing the many small gradient entries.
type fig14Point struct {
	method string
	bits   float64
	mae    float64
}

// fig14Grid measures every {quantizer}×{entropy coder} chain plus LLM.265
// on a real gradient bucket (collected from a short training run of the
// substrate model — real gradients carry the outer-product structure that
// synthetic iid draws lack, and that structure is what the codec exploits).
func fig14Grid(ctx *Ctx) []fig14Point {
	steps := 60
	if ctx.Quick {
		steps = 30
	}
	grad := realGradientBucket(ctx, steps)
	n := len(grad)

	var pts []fig14Point
	type qspec struct {
		name     string
		symbols  []byte
		rec      []float32
		metaBits float64 // per value
	}
	var qs []qspec
	for _, bits := range []int{3, 4, 6} {
		sym, rec, groups := quant.RTNSymbols(grad, bits, 128)
		qs = append(qs, qspec{fmt.Sprintf("INT%d", bits), sym, rec, float64(groups) * 32 / float64(n)})
	}
	for _, f := range []*quant.MXFPFormat{quant.MXFP4, quant.MXFP6, quant.MXFP8} {
		sym, rec, scaleBytes := quant.MXFPSymbols(grad, f)
		qs = append(qs, qspec{f.Name, sym, rec, float64(scaleBytes) * 8 / float64(n)})
	}
	for _, q := range qs {
		mae := quant.MAE(grad, q.rec)
		for _, coder := range entropy.All() {
			comp, err := coder.Encode(q.symbols)
			if err != nil {
				panic(err)
			}
			bits := float64(len(comp))*8/float64(n) + q.metaBits
			pts = append(pts, fig14Point{q.name + "+" + coder.Name(), bits, mae})
		}
	}

	// LLM.265 / three-in-one: QP sweep on the same tensor. Per-row 8-bit
	// mapping gives the codec the same multi-scale handling the group-wise
	// baselines enjoy (one scale per 128-value row).
	cols := 128
	rows := n / cols
	tns := core.FromSlice(rows, cols, grad[:rows*cols])
	o := core.DefaultOptions()
	o.PerRowQuant = true
	for _, qp := range []int{2, 8, 14, 20, 26, 32} {
		e, err := o.Encode(tns, qp)
		if err != nil {
			panic(err)
		}
		d, err := o.Decode(e)
		if err != nil {
			panic(err)
		}
		pts = append(pts, fig14Point{"three-in-one (LLM.265)", e.BitsPerValue(), quant.MAE(tns.Data, d.Data)})
	}
	return pts
}

// Fig14 renders the information-efficiency grid: (a) gradient error vs bits.
func Fig14(ctx *Ctx) *Table {
	pts := fig14Grid(ctx)
	t := &Table{
		ID:      "fig14",
		Title:   "Chained-pipeline baselines vs three-in-one on gradients",
		Columns: []string{"method", "bits/value", "MAE"},
	}
	for _, p := range pts {
		t.AddRow(p.method, f2(p.bits), f(p.mae))
	}

	// Part (b): always-on weight compression accuracy at matched bits.
	m := ctx.Model("llama-mini")
	_, baseAcc := llm.EvalTasks(m, ctx.Tasks())
	intBits, intAcc := evalCompressed(ctx, "llama-mini", rtnCompressor(3, 128))
	mxBits, mxAcc := evalCompressed(ctx, "llama-mini", mxfpWeightCompressor(quant.MXFP4))
	l265Bits, l265Acc := evalCompressed(ctx, "llama-mini", llm.LLM265WeightCompressor(core.DefaultOptions(), 2.9))
	t.Notes = append(t.Notes,
		fmt.Sprintf("(b) always-on accuracy (base %.2f): INT3+CABAC %.2f@%.2fb, MXFP4+CABAC %.2f@%.2fb, three-in-one %.2f@%.2fb",
			baseAcc, intAcc, intBits, mxAcc, mxBits, l265Acc, l265Bits),
		"paper Fig. 14: under equal error the three-in-one uses fewer bits than all eight chained baselines")
	return t
}

func mxfpWeightCompressor(f *quant.MXFPFormat) llm.WeightCompressor {
	return func(_ string, w *nn.Mat) (*nn.Mat, float64, error) {
		rec, bpv := quant.MXFPQuantize(w.V, f)
		out := nn.NewMat(w.R, w.C)
		copy(out.V, rec)
		return out, bpv, nil
	}
}

// Fig15 compares codec+NIC system area and one-epoch gradient-transfer
// energy for the baselines and the three-in-one, using the compression
// ratios each method actually achieves at matched quality on gradients.
func Fig15(ctx *Ctx) *Table {
	pts := fig14Grid(ctx)
	// Matched quality: the three-in-one's operating point nearest 2.8 bits
	// sets the MAE target; each family contributes its cheapest point at or
	// below that error (falling back to its most accurate point).
	var target float64
	bestDist := 1e18
	for _, p := range pts {
		if p.method != "three-in-one (LLM.265)" {
			continue
		}
		if d := abs64(p.bits - 2.8); d < bestDist {
			bestDist, target = d, p.mae
		}
	}
	best := map[string]fig14Point{}
	for _, p := range pts {
		family := familyOf(p.method)
		cur, ok := best[family]
		switch {
		case !ok:
			best[family] = p
		case p.mae <= target && (cur.mae > target || p.bits < cur.bits):
			best[family] = p
		case p.mae > target && cur.mae > target && p.mae < cur.mae:
			best[family] = p
		}
	}

	// Pythia-125M gradients for one epoch (125M params × 16 bits × 2
	// all-reduce passes × 1000 steps/epoch — modeled).
	traffic := 125e6 * 16 * 2 * 1000

	t := &Table{
		ID:      "fig15",
		Title:   "100 Gbps system: codec+NIC area and one-epoch gradient energy",
		Columns: []string{"codec", "ratio", "area mm²", "energy J"},
	}
	for _, bc := range hw.BaselineCodecs {
		p, ok := best[bc.Name]
		if !ok {
			continue
		}
		ratio := 16 / p.bits
		area := hw.SystemArea(bc.EncArea, bc.DecArea, ratio)
		enc := hw.Component{EnergyPerBitPJ: bc.EncPJ}
		dec := hw.Component{EnergyPerBitPJ: bc.DecPJ}
		energy := hw.TransferEnergyPJ(enc, dec, ratio, traffic) * 1e-12
		t.AddRow(bc.Name+" ("+p.method+")", f2(ratio), f2(area), f2(energy))
	}
	if p, ok := best["three-in-one"]; ok {
		ratio := 16 / p.bits
		area := hw.SystemArea(hw.ThreeInOneEnc.AreaMM2, hw.ThreeInOneDec.AreaMM2, ratio)
		energy := hw.TransferEnergyPJ(hw.ThreeInOneEnc, hw.ThreeInOneDec, ratio, traffic) * 1e-12
		t.AddRow("three-in-one", f2(ratio), f2(area), f2(energy))
	}
	t.AddRow("no compression (NIC only)", "1.00", f2(hw.NICMellanoxCX5.AreaMM2),
		f2(traffic*hw.NCCLEndToEnd.EnergyPerBitPJ*1e-12))
	t.Notes = append(t.Notes,
		"paper Fig. 15: the three-in-one's higher information efficiency shrinks the NIC (the dominant cost), giving the best area and energy")
	return t
}

// familyOf maps a grid method name to its entropy-coder family, or to
// "three-in-one".
func familyOf(method string) string {
	for _, c := range []string{"Huffman", "Deflate", "LZ4", "CABAC"} {
		if len(method) > len(c) && method[len(method)-len(c):] == c {
			return c
		}
	}
	return "three-in-one"
}

// Fig16 runs the cluster-level model: the area-vs-performance Pareto sweep
// and the energy-efficiency-vs-model-size projection.
func Fig16(ctx *Ctx) *Table {
	// The paper sweeps >2,000 configurations; the full profile matches it.
	maxGPUs := 768
	if ctx.Quick {
		maxGPUs = 128
	}
	codecs := []cluster.CodecSpec{cluster.NoCodec, cluster.NVCodec, cluster.ThreeInOne}
	pts := cluster.Sweep(cluster.LLaMA7B, cluster.DefaultGPU, cluster.DefaultNIC, codecs, maxGPUs)

	t := &Table{
		ID:      "fig16",
		Title:   fmt.Sprintf("Cluster modeling (%d configurations swept)", len(pts)),
		Columns: []string{"area budget mm²", "uncompressed tok/s", "NVENC/DEC tok/s", "three-in-one tok/s", "speedup"},
	}
	byCodec := map[string][]cluster.Point{}
	for _, p := range pts {
		byCodec[p.Cfg.Codec.Name] = append(byCodec[p.Cfg.Codec.Name], p)
	}
	for _, budget := range []float64{15000, 30000, 50000, 80000} {
		u, okU := cluster.BestUnderArea(byCodec["uncompressed"], budget)
		v, okV := cluster.BestUnderArea(byCodec["nvenc/dec"], budget)
		c, okC := cluster.BestUnderArea(byCodec["three-in-one"], budget)
		if !okU || !okV || !okC {
			continue
		}
		t.AddRow(f2(budget), f2(u.Throughput), f2(v.Throughput), f2(c.Throughput),
			fmt.Sprintf("%.2fx", c.Throughput/u.Throughput))
	}

	// (b) energy efficiency vs model size with memory-driven pipelines.
	for _, params := range []float64{7e9, 13e9, 30e9, 70e9} {
		llmCfg := cluster.ScaleModel(cluster.LLaMA7B, params)
		pp := cluster.MinPP(llmCfg, cluster.DefaultGPU)
		base := cluster.Config{GPU: cluster.DefaultGPU, NIC: cluster.DefaultNIC, Codec: cluster.NoCodec, DP: 4, PP: pp, NICsPerGPU: 1}
		comp := base
		comp.Codec = cluster.ThreeInOne
		ratio := cluster.EnergyPerToken(llmCfg, base) / cluster.EnergyPerToken(llmCfg, comp)
		t.Notes = append(t.Notes, fmt.Sprintf("(b) %.0fB params (PP=%d): compression energy win %.2fx", params/1e9, pp, ratio))
	}
	t.Notes = append(t.Notes,
		"paper Fig. 16: compression dominates the Pareto frontier (~1.7x at 50k mm²); the energy win grows with model scale")
	return t
}

func abs64(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
