package experiments

import (
	"fmt"
	"math"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/dct"
	"repro/internal/frame"
	"repro/internal/intra"
	"repro/internal/quant"
	"repro/internal/tensorgen"
)

// keyProjectionStack synthesizes the paper's Fig. 2 tensor: a stack of
// Key-Projection-like weight matrices with LLaMA-style channel structure
// (per-channel means/scales, outlier columns) and weak inter-layer
// correlation, the layer index serving as the temporal axis. A generated
// stack is used (rather than the substrate model's weights) because the
// tiny trained model has not developed the channel structure of a 7B
// checkpoint — the structure, not the training provenance, is what Fig. 2
// studies (DESIGN.md §2).
func keyProjectionStack(ctx *Ctx) []*core.Tensor {
	rng := newRng(2)
	size := 192
	if ctx.Quick {
		size = 96
	}
	raw := tensorgen.WeightStack(rng, 4, size, size, 0.05)
	stack := make([]*core.Tensor, len(raw))
	for i, d := range raw {
		stack[i] = core.FromSlice(size, size, d)
	}
	return stack
}

// Fig2 reproduces the pipeline-stage ablation: stages are enabled
// incrementally and each configuration is driven to the same quality
// (MSE ≤ 1% of the tensor's variance, the analog of the paper's MSE < 0.01
// on LLaMA-scale weights), reporting the bits per value needed.
func Fig2(ctx *Ctx) *Table {
	stack := keyProjectionStack(ctx)
	var variance float64
	var n int
	for _, t := range stack {
		for _, v := range t.Data {
			variance += float64(v) * float64(v)
			n++
		}
	}
	variance /= float64(n)
	budget := 0.01 * variance

	type stage struct {
		name  string
		tools codec.Tools
		raw   bool // stage 1: plain 8-bit RTN, no codec
	}
	stages := []stage{
		{name: "(1) 8-bit quantization", raw: true},
		{name: "(2) + entropy coding (CABAC)", tools: codec.Tools{CABAC: true}},
		{name: "(3) + DCT transform", tools: codec.Tools{CABAC: true, Transform: true}},
		{name: "(4) + CTU partitioning", tools: codec.Tools{CABAC: true, Transform: true, Partitioning: true}},
		{name: "(5) + intra prediction", tools: codec.AllTools},
		{name: "(6) + inter prediction", tools: codec.Tools{CABAC: true, Partitioning: true, Transform: true, IntraPred: true, InterPred: true}},
	}

	t := &Table{
		ID:      "fig2",
		Title:   "Pipeline ablation on Key-Projection weights (quality: MSE ≤ 1% of Var)",
		Columns: []string{"stage", "bits/value", "MSE/Var"},
	}
	for _, s := range stages {
		var bits, relMSE float64
		if s.raw {
			// Per-tensor 8-bit RTN: by construction 8 bits/value.
			bits = 8
			var sse float64
			for _, w := range stack {
				rec := quant.RTNAsymmetric(w.Data, 8)
				sse += quant.MSE(w.Data, rec)
			}
			relMSE = sse / float64(len(stack)) / variance
		} else {
			o := core.DefaultOptions()
			o.Tools = s.tools
			e, mse, err := o.EncodeStackToMSE(stack, budget)
			if err != nil {
				panic(err)
			}
			bits = e.BitsPerValue()
			relMSE = mse / variance
		}
		t.AddRow(s.name, fmt.Sprintf("%.3f", bits), fmt.Sprintf("%.4f", relMSE))
	}
	t.Notes = append(t.Notes,
		"paper: 8.0 -> 2.6 bits across stages (1)-(5); inter prediction (6) increases bits",
		"quality constraint is relative (MSE <= 1% of tensor variance) because substrate weight scales differ from LLaMA's")
	return t
}

// Fig3 reproduces the DCT de-outliering statistics: a normal distribution
// with injected outliers is transformed block-wise; outlier diagnostics
// collapse in the coefficient domain. The 128-outlier example is included.
func Fig3(ctx *Ctx) *Table {
	rng := newRng(3)
	n := 32
	blocks := 64
	if ctx.Quick {
		blocks = 16
	}
	var inVals, outVals []float64
	for b := 0; b < blocks; b++ {
		v := tensorgen.NormalWithOutliers(rng, n*n, 1, 0.01, 30)
		spatial := make([]float64, n*n)
		for i, x := range v {
			spatial[i] = float64(x)
		}
		coef := dct.ForwardFloat(spatial, n)
		inVals = append(inVals, spatial...)
		outVals = append(outVals, coef...)
	}
	t := &Table{
		ID:      "fig3",
		Title:   "Transform coding amortizes outliers (32x32 blocks, N(0,1) + 1% outliers at ±30)",
		Columns: []string{"domain", "kurtosis", "peak/sigma"},
	}
	t.AddRow("spatial (input)", f2(tensorgen.Kurtosis(inVals)), f2(tensorgen.PeakToSigma(inVals)))
	t.AddRow("DCT coefficients", f2(tensorgen.Kurtosis(outVals)), f2(tensorgen.PeakToSigma(outVals)))

	// (c)->(d): the single-outlier example with value 128.
	ex := make([]float64, 8*8)
	ex[3*8+3] = 128
	coef := dct.ForwardFloat(ex, 8)
	var peak float64
	for _, c := range coef {
		if math.Abs(c) > peak {
			peak = math.Abs(c)
		}
	}
	t.AddRow("example: impulse 128 (8x8)", "-", fmt.Sprintf("peak coef %.1f", peak))
	t.Notes = append(t.Notes, "paper Fig. 3: output contains no outliers; the 128 outlier is spread across the block")
	return t
}

// Fig4 walks one weight block through the intra pipeline: mode choice,
// prediction quality, and the sparsity of the quantized coefficients.
func Fig4(ctx *Ctx) *Table {
	w := keyProjectionStack(ctx)[1]
	pix, _, _ := quant.ToUint8(w.Data)
	n := 32
	// Take the top-left 32×32 block with its neighbours as references.
	block := make([]int32, n*n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			block[y*n+x] = int32(pix[(y+1)*w.Cols+x+1])
		}
	}
	refs := intra.NewRefs(n)
	for i := 0; i < 2*n && i+1 < w.Cols; i++ {
		refs.Above[i] = int32(pix[0*w.Cols+i+1])
	}
	for i := 0; i < 2*n && i+1 < w.Rows; i++ {
		refs.Left[i] = int32(pix[(i+1)*w.Cols])
	}
	refs.Corner = int32(pix[0])

	blockEnergy := energyInt32(block)
	bestMode, bestEnergy := intra.Mode(0), math.Inf(1)
	pred := make([]int32, n*n)
	for _, mode := range intra.HEVCModes {
		intra.Predict(mode, n, refs, pred)
		res := make([]int32, n*n)
		for i := range res {
			res[i] = block[i] - pred[i]
		}
		if e := energyInt32(res); e < bestEnergy {
			bestMode, bestEnergy = mode, e
		}
	}
	intra.Predict(bestMode, n, refs, pred)
	res := make([]int32, n*n)
	for i := range res {
		res[i] = block[i] - pred[i]
	}
	tr := dct.NewDCT(n)
	coef := make([]int32, n*n)
	tr.Forward(coef, res)
	dct.Quantize(coef, coef, 30)
	zeros := 0
	for _, c := range coef {
		if c == 0 {
			zeros++
		}
	}

	t := &Table{
		ID:      "fig4",
		Title:   "Intra prediction on a 32x32 weight block (paper Fig. 4)",
		Columns: []string{"quantity", "value"},
	}
	t.AddRow("best intra mode", fmt.Sprintf("%d", bestMode))
	t.AddRow("block energy", f(blockEnergy))
	t.AddRow("residual energy", f(bestEnergy))
	t.AddRow("residual/block energy", f2(bestEnergy/blockEnergy))
	t.AddRow("zero coefficients after DCT+Q(qp30)", fmt.Sprintf("%d/%d (%.0f%%)", zeros, n*n, 100*float64(zeros)/float64(n*n)))
	t.Notes = append(t.Notes, "paper: prediction captures channel structure; residual is small and codes to sparse coefficients")
	return t
}

func energyInt32(v []int32) float64 {
	var mean float64
	for _, x := range v {
		mean += float64(x)
	}
	mean /= float64(len(v))
	var s float64
	for _, x := range v {
		d := float64(x) - mean
		s += d * d
	}
	return s
}

// Throughput measures the software codec's encode/decode rate and reports
// the modeled hardware engine numbers (§6.1).
func Throughput(ctx *Ctx) *Table {
	rng := newRng(18)
	size := 512
	if ctx.Quick {
		size = 192
	}
	w := core.FromSlice(size, size, tensorgen.Weights(rng, size, size))
	o := core.DefaultOptions()

	pix, _, _ := quant.ToUint8(w.Data)
	planes := frame.FromMatrix(pix, size, size, 1024, 1024)

	encStart := nowSeconds()
	stream, _, err := codec.Encode(planes, 26, o.Profile, o.Tools)
	if err != nil {
		panic(err)
	}
	encSec := nowSeconds() - encStart
	decStart := nowSeconds()
	if _, err := codec.Decode(stream); err != nil {
		panic(err)
	}
	decSec := nowSeconds() - decStart

	mb := float64(size*size) / 1e6
	t := &Table{
		ID:      "throughput",
		Title:   "Tensor codec throughput (software substrate vs modeled NVENC/NVDEC)",
		Columns: []string{"engine", "encode MB/s", "decode MB/s"},
	}
	t.AddRow("pure-Go software codec", f2(mb/encSec), f2(mb/decSec))
	t.AddRow("NVENC/NVDEC (modeled, paper §6.1)", "1100", "1300")
	t.Notes = append(t.Notes, "the hardware numbers are the paper's measurements; the software codec substitutes for the engines functionally, not in speed")
	return t
}
