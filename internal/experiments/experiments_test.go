package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// The suite below exercises the fast experiments end to end and checks the
// qualitative claims each artifact exists to demonstrate. The heavyweight
// experiments (fig5, fig8–fig11, …) are covered by the root benchmarks and
// the cmd/experiments CLI; their building blocks are tested in their own
// packages.

func quickCtx() *Ctx { return NewCtx(true) }

func cell(t *Table, row, col int) string { return t.Rows[row][col] }

func cellF(tb testing.TB, t *Table, row, col int) float64 {
	tb.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(cell(t, row, col)), 64)
	if err != nil {
		tb.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, cell(t, row, col), err)
	}
	return v
}

func TestAllRunnersRegistered(t *testing.T) {
	ids := map[string]bool{}
	for _, r := range All() {
		if r.ID == "" || r.Desc == "" || r.Run == nil {
			t.Fatalf("incomplete runner %+v", r)
		}
		if ids[r.ID] {
			t.Fatalf("duplicate id %s", r.ID)
		}
		ids[r.ID] = true
	}
	for _, want := range []string{"fig2", "fig3", "fig4", "fig5", "table1", "fig6",
		"table2", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "table3",
		"fig14", "fig15", "fig16", "throughput"} {
		if !ids[want] {
			t.Fatalf("missing experiment %s", want)
		}
	}
	if _, ok := ByID("nonsense"); ok {
		t.Fatal("ByID accepted unknown id")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "x", Title: "T", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.Notes = append(tab.Notes, "note1")
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== x: T ==", "a", "bb", "1", "2", "note: note1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestFig3DeOutliering(t *testing.T) {
	tab := Fig3(quickCtx())
	kurtIn := cellF(t, tab, 0, 1)
	kurtOut := cellF(t, tab, 1, 1)
	if kurtIn < 10 {
		t.Fatalf("input kurtosis %.1f too small for a meaningful demo", kurtIn)
	}
	if kurtOut > kurtIn/10 {
		t.Fatalf("DCT failed to de-outlier: %.2f -> %.2f", kurtIn, kurtOut)
	}
}

func TestFig2StageLadder(t *testing.T) {
	tab := Fig2(quickCtx())
	if len(tab.Rows) != 6 {
		t.Fatalf("want 6 stages, got %d", len(tab.Rows))
	}
	bits := make([]float64, 6)
	for i := range bits {
		bits[i] = cellF(t, tab, i, 1)
	}
	if bits[0] != 8 {
		t.Fatalf("stage 1 must be 8 bits, got %.2f", bits[0])
	}
	// Stages 2..5 must be monotonically non-increasing and end well below 4.
	for i := 1; i < 5; i++ {
		if bits[i] > bits[i-1]+1e-9 {
			t.Fatalf("stage %d increased bits: %.3f -> %.3f", i+1, bits[i-1], bits[i])
		}
	}
	if bits[4] > 3.6 {
		t.Fatalf("full intra pipeline needs %.2f bits, want < 3.6 (paper: 2.6)", bits[4])
	}
	// Inter prediction must not help.
	if bits[5] < bits[4]-1e-9 {
		t.Fatalf("inter prediction reduced bits (%.3f -> %.3f); paper says it must not", bits[4], bits[5])
	}
}

func TestFig4IntraCapture(t *testing.T) {
	tab := Fig4(quickCtx())
	ratio := cellF(t, tab, 3, 1)
	if ratio >= 0.8 {
		t.Fatalf("intra prediction captured too little: residual/block = %.2f", ratio)
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	tab := Table2(quickCtx())
	if len(tab.Rows) != 3 {
		t.Fatalf("want 3 GPU generations")
	}
	// Ada has AV1, Ampere/Volta don't; VP9 is decode-only everywhere.
	if cell(tab, 0, 3) != "8K Enc/Dec" || cell(tab, 1, 3) != "-" || cell(tab, 2, 3) != "-" {
		t.Fatalf("AV1 column wrong: %q %q %q", cell(tab, 0, 3), cell(tab, 1, 3), cell(tab, 2, 3))
	}
	for r := 0; r < 3; r++ {
		if cell(tab, r, 4) != "8K Dec" {
			t.Fatalf("VP9 must be decode-only, got %q", cell(tab, r, 4))
		}
	}
}

func TestFig12Table3Static(t *testing.T) {
	f12 := Fig12(quickCtx())
	if len(f12.Rows) < 8 {
		t.Fatal("fig12 missing devices")
	}
	t3 := Table3(quickCtx())
	if len(t3.Rows) != 7 {
		t.Fatalf("table3 wants 7 components, got %d", len(t3.Rows))
	}
	// NCCL energy/bit is the paper's 5120.
	if got := cellF(t, t3, 0, 3); got != 5120 {
		t.Fatalf("NCCL energy %.1f", got)
	}
	found := false
	for _, n := range t3.Notes {
		if strings.Contains(n, "31.7x") {
			found = true
		}
	}
	if !found {
		t.Fatal("table3 missing the 31.7x derivation")
	}
}

func TestFig16SpeedupBand(t *testing.T) {
	tab := Fig16(quickCtx())
	if len(tab.Rows) == 0 {
		t.Fatal("fig16 empty")
	}
	for _, row := range tab.Rows {
		s := strings.TrimSuffix(row[4], "x")
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad speedup cell %q", row[4])
		}
		if v < 1.0 || v > cFig16MaxSpeedup {
			t.Fatalf("speedup %.2f outside sanity band", v)
		}
	}
	// Energy notes ("... compression energy win 1.04x") must grow with
	// model size.
	var wins []float64
	for _, n := range tab.Notes {
		idx := strings.LastIndex(n, "win ")
		if idx < 0 {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(n[idx+4:], "x"), 64)
		if err == nil {
			wins = append(wins, v)
		}
	}
	if len(wins) >= 2 && wins[len(wins)-1] <= wins[0] {
		t.Fatalf("energy win did not grow with scale: %v", wins)
	}
}

const cFig16MaxSpeedup = 4.6 // cannot exceed the compression ratio

func TestFig14GridShape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	ctx := quickCtx()
	pts := fig14Grid(ctx)
	// 6 quantizers × 4 coders + codec sweep points.
	if len(pts) < 24+4 {
		t.Fatalf("grid too small: %d points", len(pts))
	}
	// Within a quantizer family, CABAC must not lose to Huffman by much
	// (arithmetic coding ≥ prefix coding up to adaptation overhead), and
	// LZ4 must be the worst coder (the paper's Fig. 15 premise).
	byQ := map[string]map[string]float64{}
	for _, p := range pts {
		if p.method == "three-in-one (LLM.265)" {
			continue
		}
		parts := strings.SplitN(p.method, "+", 2)
		if byQ[parts[0]] == nil {
			byQ[parts[0]] = map[string]float64{}
		}
		byQ[parts[0]][parts[1]] = p.bits
	}
	for q, coders := range byQ {
		if coders["LZ4"] <= coders["CABAC"] {
			t.Fatalf("%s: LZ4 (%.2f) beat CABAC (%.2f)?", q, coders["LZ4"], coders["CABAC"])
		}
	}
}
