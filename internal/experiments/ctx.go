// Package experiments regenerates every table and figure of the paper's
// evaluation on the repository's substrate (see DESIGN.md §4 for the
// experiment index and EXPERIMENTS.md for paper-vs-measured results).
//
// Each experiment is a function from a shared Ctx (which caches trained
// reference models) to a Table of results, so the CLI, the benchmarks and
// the tests all drive the same code.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"

	"repro/internal/data"
	"repro/internal/llm"
	"repro/internal/nn"
)

// Ctx carries the shared state (corpus, trained models, task suites) across
// experiments. Quick mode shrinks training steps and sweep grids so the full
// suite completes in a few minutes.
type Ctx struct {
	Quick bool

	mu     sync.Mutex
	corpus *data.Corpus
	models map[string]*nn.Transformer
	tasks  []llm.Task
}

// NewCtx creates an experiment context.
func NewCtx(quick bool) *Ctx {
	return &Ctx{Quick: quick, models: map[string]*nn.Transformer{}}
}

// Corpus returns the shared synthetic corpus.
func (c *Ctx) Corpus() *data.Corpus {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.corpus == nil {
		c.corpus = data.NewCorpus(1, 64, 60000, 10000)
	}
	return c.corpus
}

// Model returns the trained reference model for a zoo spec, training it on
// first use.
func (c *Ctx) Model(name string) *nn.Transformer {
	corpus := c.Corpus()
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.models[name]; ok {
		return m
	}
	spec, ok := llm.Zoo()[name]
	if !ok {
		panic(fmt.Sprintf("experiments: unknown model %q", name))
	}
	if c.Quick {
		spec.TrainSteps /= 3
	}
	m := llm.Train(spec, corpus, 42)
	c.models[name] = m
	return m
}

// Tasks returns the shared zero-shot task suite.
func (c *Ctx) Tasks() []llm.Task {
	corpus := c.Corpus()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tasks == nil {
		n := 40
		if c.Quick {
			n = 16
		}
		c.tasks = llm.GenerateTasks(corpus, 7, n)
	}
	return c.tasks
}

// trainSteps scales a step count down in quick mode.
func (c *Ctx) trainSteps(full int) int {
	if c.Quick {
		return full / 4
	}
	return full
}

// Table is a rendered experiment result.
type Table struct {
	ID      string // e.g. "fig5", "table1"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if i < len(widths) {
				parts[i] = pad(cell, widths[i])
			} else {
				parts[i] = cell
			}
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// f formats a float compactly.
func f(v float64) string { return fmt.Sprintf("%.3g", v) }

// f2 formats with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// Runner is a named experiment.
type Runner struct {
	ID   string
	Desc string
	Run  func(*Ctx) *Table
}

// All returns every experiment in paper order.
func All() []Runner {
	return []Runner{
		{"fig2", "Pipeline-stage ablation: bits/value at fixed quality", Fig2},
		{"fig3", "DCT de-outliering statistics", Fig3},
		{"fig4", "Intra-prediction walkthrough on a weight block", Fig4},
		{"fig5", "Accuracy vs average bit-width (7B-class stand-in)", Fig5},
		{"table1", "70B-class stand-in at ~3 bits", Table1},
		{"fig6", "Codec selection: H.264 vs H.265 vs AV1", Fig6},
		{"table2", "GPU video-codec support matrix", Table2},
		{"fig7", "Other model families and tasks", Fig7},
		{"fig8", "KV-cache and activation compression", Fig8},
		{"fig9", "Pipeline-parallel training", Fig9},
		{"fig10", "Data-parallel training", Fig10},
		{"fig11", "Downstream quality of DP-trained models", Fig11},
		{"fig12", "Die-area comparison", Fig12},
		{"table3", "Energy/area/power of codecs vs NCCL", Table3},
		{"fig14", "Information-efficiency baseline grid", Fig14},
		{"fig15", "Codec+NIC system area and energy", Fig15},
		{"fig16", "Cluster-level modeling", Fig16},
		{"throughput", "NVENC/NVDEC and software codec throughput", Throughput},
	}
}

// ByID finds a runner.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// newRng returns a deterministic RNG for an experiment.
func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
