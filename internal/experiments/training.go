package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/nn"
	"repro/internal/train"
)

// freshModel builds an untrained model from a zoo spec with a fixed init
// seed so every training-experiment arm starts from identical weights.
func freshModel(name string, seed int64) *nn.Transformer {
	spec, ok := llm.Zoo()[name]
	if !ok {
		panic(fmt.Sprintf("experiments: unknown model %q", name))
	}
	return nn.NewTransformer(rand.New(rand.NewSource(seed)), spec.Cfg)
}

// Fig9 reproduces pipeline-parallel training with compressed inter-stage
// communication: uncompressed, LLM.265(A), LLM.265(A)+GQ and LLM.265(A+G)
// with residual compensation.
func Fig9(ctx *Ctx) *Table {
	const modelName = "pythia-pp"
	corpus := ctx.Corpus()
	steps := ctx.trainSteps(800)
	switchStep := steps * 5 / 16 // the paper's 2500/8000 ratio

	type arm struct {
		name string
		cfg  train.PipelineConfig
	}
	base := train.PipelineConfig{Stages: 4, MicroBatch: 4, AccumSteps: 2}
	arms := []arm{
		{"uncompressed", base},
		{"LLM.265(A@3.5)", withAct(base, train.LLM265Transform(core.DefaultOptions(), 3.5))},
		{"LLM.265(A)+GQ (RTN-8 grads)", withActGrad(base,
			train.LLM265Transform(core.DefaultOptions(), 3.5), train.RTNTransform(8, 128))},
		{"LLM.265(A+G) residual comp.", withActGrad(base,
			train.LLM265Transform(core.DefaultOptions(), 3.5),
			train.LLM265ResidualTransform(core.DefaultOptions(), 3.5, 3.5, switchStep))},
	}

	t := &Table{
		ID:      "fig9",
		Title:   fmt.Sprintf("Pipeline-parallel training (%d steps, 4 stages)", steps),
		Columns: []string{"config", "act bits", "grad bits", "loss@25%", "loss@100%", "final val ppl"},
	}
	for _, a := range arms {
		m := freshModel(modelName, 1234)
		res, err := train.RunPipeline(m, corpus, nn.NewAdam(3e-3), a.cfg, steps, 55)
		if err != nil {
			panic(err)
		}
		q := res.Curve[len(res.Curve)/4].Loss
		last := res.Curve[len(res.Curve)-1].Loss
		t.AddRow(a.name, f2(res.ActBits), f2(res.GradBits), f2(q), f2(last), f2(res.FinalPPL))
	}
	t.Notes = append(t.Notes,
		"paper Fig. 9: LLM.265(A) converges at least as fast as uncompressed (78% comm saved); naive gradient RTN deviates; residual compensation (avg ~10.1 bits) tracks the uncompressed loss")
	return t
}

func withAct(c train.PipelineConfig, a train.TensorTransform) train.PipelineConfig {
	c.CompressActivations = a
	return c
}

func withActGrad(c train.PipelineConfig, a, g train.TensorTransform) train.PipelineConfig {
	c.CompressActivations = a
	c.CompressActGrads = g
	return c
}

// dpArm is one Fig. 10 configuration: build returns the optimizer, the
// gradient compressor and an optional per-step callback (used by warm-up
// baselines to advance phase and freeze Adam's variance).
type dpArm struct {
	name  string
	build func(steps int) (nn.Optimizer, train.GradCompressor, func(step int))
}

func dpArms() []dpArm {
	plain := func(c train.GradCompressor) func(int) (nn.Optimizer, train.GradCompressor, func(int)) {
		return func(int) (nn.Optimizer, train.GradCompressor, func(int)) {
			return nn.NewAdam(3e-3), c, nil
		}
	}
	oneBit := func(lamb bool) func(steps int) (nn.Optimizer, train.GradCompressor, func(int)) {
		return func(steps int) (nn.Optimizer, train.GradCompressor, func(int)) {
			ob := baselines.NewOneBitCompressor(steps * 15 / 100)
			if lamb {
				opt := nn.NewLAMB(2e-3)
				return opt, train.OneBitDP(ob), func(int) {
					ob.AdvanceStep()
					if !ob.InWarmup() {
						opt.FreezeVariance = true
					}
				}
			}
			opt := nn.NewAdam(3e-3)
			return opt, train.OneBitDP(ob), func(int) {
				ob.AdvanceStep()
				if !ob.InWarmup() {
					opt.FreezeVariance = true
				}
			}
		}
	}
	return []dpArm{
		{"uncompressed", plain(nil)},
		{"LLM.265 (2.6b)", plain(train.LLM265DP(core.DefaultOptions(), 2.6))},
		{"LLM.265 (1.4b)", plain(train.LLM265DP(core.DefaultOptions(), 1.4))},
		{"LLM.265 (0.8b)", plain(train.LLM265DP(core.DefaultOptions(), 0.8))},
		{"1-bit Adam", oneBit(false)},
		{"1-bit LAMB", oneBit(true)},
		{"RTN 4-bit", plain(train.RTNDP(4, 128))},
		{"RTN 2-bit", plain(train.RTNDP(2, 128))},
	}
}

// fig10Models caches the trained DP models for Fig. 11.
var fig10Models map[string]*nn.Transformer

// Fig10 reproduces data-parallel training with compressed gradients.
func Fig10(ctx *Ctx) *Table {
	const modelName = "pythia-dp"
	corpus := ctx.Corpus()
	steps := ctx.trainSteps(800)

	t := &Table{
		ID:      "fig10",
		Title:   fmt.Sprintf("Data-parallel training (%d steps, 4 replicas)", steps),
		Columns: []string{"config", "avg bits", "final loss", "final val ppl"},
	}
	fig10Models = map[string]*nn.Transformer{}
	for _, a := range dpArms() {
		m := freshModel(modelName, 4321)
		opt, compress, onStep := a.build(steps)
		res, err := train.RunDataParallel(m, corpus, opt, train.DPConfig{
			Replicas: 4, Batch: 4, Compress: compress, EvalBatches: 4,
		}, steps, 66, onStep)
		if err != nil {
			panic(err)
		}
		fig10Models[a.name] = m
		t.AddRow(a.name, f2(res.AvgBits), f2(res.Curve[len(res.Curve)-1].Loss), f2(res.FinalPPL))
	}
	t.Notes = append(t.Notes,
		"paper Fig. 10 ordering: LLM.265(2.6) > RTN-4 > LLM.265(1.4) > LLM.265(0.8) ~ 1-bit LAMB > RTN-2; LLM.265 needs no warm-up or optimizer change")
	return t
}

// Fig11 evaluates the Fig. 10 models on the downstream task suite.
func Fig11(ctx *Ctx) *Table {
	if fig10Models == nil {
		Fig10(ctx)
	}
	tasks := ctx.Tasks()
	t := &Table{
		ID:      "fig11",
		Title:   "Downstream accuracy of DP-trained models",
		Columns: []string{"config", "mean accuracy", "vs uncompressed"},
	}
	base := 0.0
	if m, ok := fig10Models["uncompressed"]; ok {
		_, base = llm.EvalTasks(m, tasks)
	}
	for _, name := range []string{"uncompressed", "LLM.265 (2.6b)", "LLM.265 (1.4b)", "1-bit Adam", "RTN 4-bit"} {
		m, ok := fig10Models[name]
		if !ok {
			continue
		}
		_, acc := llm.EvalTasks(m, tasks)
		rel := "-"
		if base > 0 {
			rel = f2(acc / base)
		}
		t.AddRow(name, f2(acc), rel)
	}
	t.Notes = append(t.Notes,
		"paper Fig. 11: LLM.265(1.4b) keeps ≥95.2% and LLM.265(2.6b) ≥96.6% of the uncompressed model's accuracy")
	return t
}

// realGradientBucket trains the DP stand-in briefly and returns the
// flattened weight-matrix gradient bucket of the final step — the tensor
// family the Fig. 14/15 information-efficiency studies compress.
func realGradientBucket(ctx *Ctx, steps int) []float32 {
	corpus := ctx.Corpus()
	m := freshModel("pythia-dp", 1414)
	opt := nn.NewAdam(3e-3)
	rng := rand.New(rand.NewSource(14))
	for step := 0; step < steps; step++ {
		toks, tgts := corpus.Batch(rng, 4, m.Cfg.SeqLen)
		m.ZeroGrads()
		m.TrainStep(toks, tgts)
		if step < steps-1 {
			opt.Step(m.Params())
		}
	}
	var flat []float32
	for _, p := range m.Params() {
		if p.G.R >= 8 && p.G.C >= 8 {
			flat = append(flat, p.G.V...)
		}
	}
	return flat
}
