package quant

import (
	"math/rand"
	"testing"
)

func TestRTNSymbolsMatchDequant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := randVals(rng, 1000, 1)
	sym, rec, groups := RTNSymbols(data, 4, 128)
	if groups != 8 {
		t.Fatalf("groups = %d, want 8", groups)
	}
	// The symbols must stay within the 4-bit alphabet and the
	// reconstruction must match plain groupwise RTN.
	for i, s := range sym {
		if s > 15 {
			t.Fatalf("symbol %d out of range: %d", i, s)
		}
	}
	plain, _ := RTNGroupwise(data, 4, 128)
	for i := range rec {
		if rec[i] != plain[i] {
			t.Fatalf("reconstruction differs from RTNGroupwise at %d", i)
		}
	}
}

func TestRTNSymbolsConstantGroup(t *testing.T) {
	data := make([]float32, 64)
	for i := range data {
		data[i] = 3
	}
	sym, rec, _ := RTNSymbols(data, 3, 32)
	for i := range rec {
		if rec[i] != 3 || sym[i] != 0 {
			t.Fatalf("constant group mishandled: rec %v sym %v", rec[i], sym[i])
		}
	}
}

func TestMXFPSymbolsMatchDequant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := randVals(rng, 512, 2)
	sym, rec, scaleBytes := MXFPSymbols(data, MXFP6)
	if scaleBytes != 512/MXBlockSize {
		t.Fatalf("scaleBytes = %d", scaleBytes)
	}
	plain, _ := MXFPQuantize(data, MXFP6)
	for i := range rec {
		if rec[i] != plain[i] {
			t.Fatalf("MXFP symbols dequant differs at %d: %v vs %v", i, rec[i], plain[i])
		}
	}
	// Sign bit must agree with the reconstruction sign.
	for i := range rec {
		if rec[i] < 0 && sym[i]&0x80 == 0 {
			t.Fatalf("negative value without sign bit at %d", i)
		}
		if rec[i] > 0 && sym[i]&0x80 != 0 {
			t.Fatalf("positive value with sign bit at %d", i)
		}
	}
}

func TestNearestIndexAgreesWithNearest(t *testing.T) {
	for _, f := range []*MXFPFormat{MXFP4, MXFP6, MXFP8} {
		for v := 0.0; v < f.Max()*1.2; v += f.Max() / 100 {
			if got, want := f.grid[f.nearestIndex(v)], f.nearest(v); got != want {
				t.Fatalf("%s: nearestIndex(%f) -> %f, nearest -> %f", f.Name, v, got, want)
			}
		}
	}
}
