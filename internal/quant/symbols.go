package quant

import "math"

// RTNSymbols quantizes data with group-wise asymmetric RTN and additionally
// returns the integer level of every value as a byte symbol — the
// serialization that feeds the chained entropy-coding pipelines of §7.1
// (quantize → symbols → Huffman/Deflate/LZ4/CABAC). bits must be ≤ 8.
// The raw storage cost is bits per value plus 32 bits of FP16 scale+zero per
// group; entropy coding replaces the `bits` part.
func RTNSymbols(data []float32, bits, groupSize int) (symbols []byte, rec []float32, groups int) {
	if bits < 1 || bits > 8 {
		panic("quant: RTNSymbols needs 1..8 bits")
	}
	if groupSize <= 0 {
		groupSize = len(data)
	}
	symbols = make([]byte, len(data))
	rec = make([]float32, len(data))
	levels := float64(int64(1)<<bits) - 1
	for start := 0; start < len(data); start += groupSize {
		end := start + groupSize
		if end > len(data) {
			end = len(data)
		}
		groups++
		lo, hi := minMax(data[start:end])
		if hi == lo {
			for i := start; i < end; i++ {
				rec[i] = lo
			}
			continue
		}
		scale := (float64(hi) - float64(lo)) / levels
		for i := start; i < end; i++ {
			q := math.Round((float64(data[i]) - float64(lo)) / scale)
			if q < 0 {
				q = 0
			}
			if q > levels {
				q = levels
			}
			symbols[i] = byte(q)
			rec[i] = float32(float64(lo) + q*scale)
		}
	}
	return symbols, rec, groups
}

// MXFPSymbols quantizes data into the MX format and returns one byte symbol
// per value (grid index with the sign in the top bit) plus one scale byte
// per block, for the chained entropy-coding pipelines.
func MXFPSymbols(data []float32, f *MXFPFormat) (symbols []byte, rec []float32, scaleBytes int) {
	symbols = make([]byte, len(data))
	rec = make([]float32, len(data))
	for start := 0; start < len(data); start += MXBlockSize {
		end := start + MXBlockSize
		if end > len(data) {
			end = len(data)
		}
		scaleBytes++
		var amax float64
		for _, v := range data[start:end] {
			if a := math.Abs(float64(v)); a > amax {
				amax = a
			}
		}
		if amax == 0 {
			continue
		}
		e := math.Ceil(math.Log2(amax / f.Max()))
		scale := math.Pow(2, e)
		for i := start; i < end; i++ {
			v := float64(data[i]) / scale
			idx := f.nearestIndex(math.Abs(v))
			q := f.grid[idx]
			sym := byte(idx)
			if v < 0 {
				q = -q
				sym |= 0x80
			}
			symbols[i] = sym
			rec[i] = float32(q * scale)
		}
	}
	return symbols, rec, scaleBytes
}

// nearestIndex returns the grid index closest to |v|.
func (f *MXFPFormat) nearestIndex(v float64) int {
	lo, hi := 0, len(f.grid)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if f.grid[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo > 0 && v-f.grid[lo-1] < f.grid[lo]-v {
		return lo - 1
	}
	return lo
}
