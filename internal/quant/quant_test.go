package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randVals(rng *rand.Rand, n int, scale float64) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(rng.NormFloat64() * scale)
	}
	return v
}

func TestRTNSymmetricErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := randVals(rng, 1000, 1)
	for _, bits := range []int{2, 4, 8} {
		q := RTNSymmetric(data, bits)
		var amax float64
		for _, v := range data {
			if a := math.Abs(float64(v)); a > amax {
				amax = a
			}
		}
		delta := amax / float64(int64(1)<<(bits-1))
		for i := range data {
			err := math.Abs(float64(q[i]) - float64(data[i]))
			// Clamping at +amax can cost up to delta.
			if err > delta+1e-6 {
				t.Fatalf("bits=%d idx=%d: err %.5f > delta %.5f", bits, i, err, delta)
			}
		}
	}
}

func TestRTNMoreBitsLessError(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := randVals(rng, 4000, 1)
	prev := math.Inf(1)
	for _, bits := range []int{2, 3, 4, 6, 8} {
		m := MSE(data, RTNSymmetric(data, bits))
		if m >= prev {
			t.Fatalf("bits=%d: MSE %.6f not below previous %.6f", bits, m, prev)
		}
		prev = m
	}
}

func TestRTNAsymmetricHandlesOffset(t *testing.T) {
	// A shifted distribution wastes half the symmetric grid; asymmetric
	// quantization must do better.
	rng := rand.New(rand.NewSource(3))
	data := make([]float32, 2000)
	for i := range data {
		data[i] = float32(5 + rng.NormFloat64())
	}
	sym := MSE(data, RTNSymmetric(data, 4))
	asym := MSE(data, RTNAsymmetric(data, 4))
	if asym >= sym {
		t.Fatalf("asymmetric MSE %.6f should beat symmetric %.6f on offset data", asym, sym)
	}
}

func TestRTNGroupwiseBeatsPerTensorWithOutliers(t *testing.T) {
	// Group-wise quantization contains the damage of an outlier to its
	// group — the reason GPTQ-128G/AWQ-128G exist.
	rng := rand.New(rand.NewSource(4))
	data := randVals(rng, 4096, 1)
	data[100] = 80 // massive outlier
	perTensor := MSE(data, RTNAsymmetric(data, 3))
	grouped, bpv := RTNGroupwise(data, 3, 128)
	g := MSE(data, grouped)
	if g >= perTensor {
		t.Fatalf("groupwise MSE %.6f should beat per-tensor %.6f", g, perTensor)
	}
	wantBPV := 3 + 32.0/128
	if math.Abs(bpv-wantBPV) > 1e-9 {
		t.Fatalf("groupwise bpv = %.4f, want %.4f", bpv, wantBPV)
	}
}

func TestToFromUint8RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := randVals(rng, 3000, 2)
	pix, scale, zero := ToUint8(data)
	back := FromUint8(pix, scale, zero)
	lo, hi := minMax(data)
	maxErr := (float64(hi) - float64(lo)) / 255 / 2
	for i := range data {
		if err := math.Abs(float64(back[i]) - float64(data[i])); err > maxErr+1e-6 {
			t.Fatalf("idx %d: err %.6f > half-step %.6f", i, err, maxErr)
		}
	}
}

func TestToUint8Constant(t *testing.T) {
	data := []float32{3.5, 3.5, 3.5}
	pix, scale, zero := ToUint8(data)
	back := FromUint8(pix, scale, zero)
	for i := range back {
		if back[i] != 3.5 {
			t.Fatalf("constant roundtrip: %v", back)
		}
	}
}

func TestToUint8Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(500) + 2
		data := randVals(rng, n, math.Abs(rng.NormFloat64())+0.1)
		pix, scale, zero := ToUint8(data)
		back := FromUint8(pix, scale, zero)
		lo, hi := minMax(data)
		tol := (float64(hi)-float64(lo))/255*0.51 + 1e-5
		for i := range data {
			if math.Abs(float64(back[i])-float64(data[i])) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMXFPFormats(t *testing.T) {
	if MXFP4.Bits() != 4 || MXFP6.Bits() != 6 || MXFP8.Bits() != 8 {
		t.Fatalf("format widths wrong: %d %d %d", MXFP4.Bits(), MXFP6.Bits(), MXFP8.Bits())
	}
	// E2M1 magnitudes are the well-known {0, .5, 1, 1.5, 2, 3, 4, 6}.
	want := []float64{0, 0.5, 1, 1.5, 2, 3, 4, 6}
	if len(MXFP4.grid) != len(want) {
		t.Fatalf("MXFP4 grid %v", MXFP4.grid)
	}
	for i, w := range want {
		if math.Abs(MXFP4.grid[i]-w) > 1e-12 {
			t.Fatalf("MXFP4 grid[%d] = %v, want %v", i, MXFP4.grid[i], w)
		}
	}
}

func TestMXFPQuantizeAccuracyOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := randVals(rng, 4096, 1)
	m4, b4 := MXFPQuantize(data, MXFP4)
	m6, b6 := MXFPQuantize(data, MXFP6)
	m8, b8 := MXFPQuantize(data, MXFP8)
	e4, e6, e8 := MSE(data, m4), MSE(data, m6), MSE(data, m8)
	if !(e8 < e6 && e6 < e4) {
		t.Fatalf("MXFP error order wrong: fp4 %.6f fp6 %.6f fp8 %.6f", e4, e6, e8)
	}
	if !(b4 < b6 && b6 < b8) {
		t.Fatalf("MXFP bpv order wrong: %f %f %f", b4, b6, b8)
	}
	if math.Abs(b4-(4+0.25)) > 1e-9 {
		t.Fatalf("MXFP4 bpv %.4f, want 4.25", b4)
	}
}

func TestMXFPBlockScalingHandlesDynamicRange(t *testing.T) {
	// Values spanning many octaves across blocks: per-block scaling keeps
	// the relative error bounded everywhere.
	data := make([]float32, 128)
	for b := 0; b < 4; b++ {
		mag := math.Pow(10, float64(b)-2)
		for i := 0; i < 32; i++ {
			data[b*32+i] = float32(mag * (1 + float64(i)/40))
		}
	}
	q, _ := MXFPQuantize(data, MXFP6)
	for i := range data {
		rel := math.Abs(float64(q[i])-float64(data[i])) / math.Abs(float64(data[i]))
		if rel > 0.15 {
			t.Fatalf("idx %d: relative error %.3f too large", i, rel)
		}
	}
}

func TestMXFPZeroBlock(t *testing.T) {
	data := make([]float32, 64)
	q, _ := MXFPQuantize(data, MXFP4)
	for i, v := range q {
		if v != 0 {
			t.Fatalf("zero block produced %v at %d", v, i)
		}
	}
}

func TestMSEAndMAE(t *testing.T) {
	a := []float32{0, 0, 0, 0}
	b := []float32{1, -1, 2, 0}
	if got := MSE(a, b); got != 1.5 {
		t.Fatalf("MSE = %v, want 1.5", got)
	}
	if got := MAE(a, b); got != 1 {
		t.Fatalf("MAE = %v, want 1", got)
	}
}

// --- degenerate-input (NaN/±Inf) regression tests -------------------------
//
// math.Round(NaN) fails both clamp comparisons and uint8(NaN) is
// platform-dependent, so before sanitization a single NaN weight corrupted
// its whole plane nondeterministically. These tests pin the sanitized
// behaviour: NaN contributes 0, ±Inf clamps to the finite float32 range,
// and all outputs are finite and deterministic.

func nan32() float32 { return float32(math.NaN()) }
func inf32(sign int) float32 {
	return float32(math.Inf(sign))
}

func assertAllFinite(t *testing.T, vals []float32, label string) {
	t.Helper()
	for i, v := range vals {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			t.Fatalf("%s: non-finite output %v at %d", label, v, i)
		}
	}
}

func TestToUint8NaNInf(t *testing.T) {
	data := []float32{1, 2, nan32(), inf32(1), inf32(-1), 3, -4}
	pix1, scale1, zero1 := ToUint8(data)
	pix2, scale2, zero2 := ToUint8(data)
	// Deterministic across calls.
	if scale1 != scale2 || zero1 != zero2 {
		t.Fatalf("nondeterministic scale/zero: (%v,%v) vs (%v,%v)", scale1, zero1, scale2, zero2)
	}
	for i := range pix1 {
		if pix1[i] != pix2[i] {
			t.Fatalf("nondeterministic pixel %d: %d vs %d", i, pix1[i], pix2[i])
		}
	}
	// ±Inf clamp to the range extremes.
	if pix1[3] != 255 {
		t.Fatalf("+Inf mapped to %d, want 255", pix1[3])
	}
	if pix1[4] != 0 {
		t.Fatalf("-Inf mapped to %d, want 0", pix1[4])
	}
	// NaN behaves as value 0: near the middle of the ±MaxFloat32 range.
	if pix1[2] < 126 || pix1[2] > 129 {
		t.Fatalf("NaN mapped to %d, want ~127 (value 0 in a symmetric range)", pix1[2])
	}
	// Metadata finite, inversion produces no NaN.
	if math.IsNaN(float64(scale1)) || math.IsInf(float64(scale1), 0) ||
		math.IsNaN(float64(zero1)) || math.IsInf(float64(zero1), 0) {
		t.Fatalf("non-finite metadata: scale %v zero %v", scale1, zero1)
	}
	assertAllFinite(t, FromUint8(pix1, scale1, zero1), "FromUint8")
}

func TestToUint8AllNaN(t *testing.T) {
	data := []float32{nan32(), nan32(), nan32()}
	pix, scale, zero := ToUint8(data)
	if scale != 0 || zero != 0 {
		t.Fatalf("all-NaN: scale %v zero %v, want 0 0", scale, zero)
	}
	for i, p := range pix {
		if p != 0 {
			t.Fatalf("all-NaN: pixel %d = %d, want 0", i, p)
		}
	}
	assertAllFinite(t, FromUint8(pix, scale, zero), "FromUint8 all-NaN")
}

func TestToUint8NaNDoesNotShiftFiniteRange(t *testing.T) {
	// A NaN must not perturb the mapping of the finite values beyond
	// treating it as a 0 contribution to the range.
	clean := []float32{-1, -0.5, 0, 0.5, 1}
	dirty := append(append([]float32(nil), clean...), nan32())
	pixClean, sClean, zClean := ToUint8(clean)
	pixDirty, sDirty, zDirty := ToUint8(dirty)
	if sClean != sDirty || zClean != zDirty {
		t.Fatalf("NaN shifted the affine map: (%v,%v) vs (%v,%v)", sClean, zClean, sDirty, zDirty)
	}
	for i := range pixClean {
		if pixClean[i] != pixDirty[i] {
			t.Fatalf("NaN shifted pixel %d: %d vs %d", i, pixClean[i], pixDirty[i])
		}
	}
}

func TestRTNSymmetricNaNInf(t *testing.T) {
	data := []float32{1, nan32(), -2, inf32(1), inf32(-1), 0.5}
	out := RTNSymmetric(data, 4)
	assertAllFinite(t, out, "RTNSymmetric")
	if out[1] != 0 {
		t.Fatalf("NaN should quantize to 0, got %v", out[1])
	}
	// Determinism.
	out2 := RTNSymmetric(data, 4)
	for i := range out {
		if out[i] != out2[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, out[i], out2[i])
		}
	}
	// All-NaN input quantizes to all zeros (amax sees only 0 contributions).
	zero := RTNSymmetric([]float32{nan32(), nan32()}, 4)
	for i, v := range zero {
		if v != 0 {
			t.Fatalf("all-NaN RTNSymmetric: %v at %d, want 0", v, i)
		}
	}
}

func TestRTNAsymmetricNaNInf(t *testing.T) {
	data := []float32{1, nan32(), -2, inf32(1), inf32(-1), 0.5}
	out := RTNAsymmetric(data, 4)
	assertAllFinite(t, out, "RTNAsymmetric")
	out2 := RTNAsymmetric(data, 4)
	for i := range out {
		if out[i] != out2[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, out[i], out2[i])
		}
	}
	// Groupwise path shares the same guard.
	gw, _ := RTNGroupwise(data, 4, 3)
	assertAllFinite(t, gw, "RTNGroupwise")
}

func TestMXFPQuantizeNaNInf(t *testing.T) {
	data := []float32{1, nan32(), -2, inf32(1), inf32(-1), 0.5}
	out, _ := MXFPQuantize(data, MXFP8)
	assertAllFinite(t, out, "MXFPQuantize")
}

func TestMinMaxEmptyAndDegenerate(t *testing.T) {
	if lo, hi := minMax(nil); lo != 0 || hi != 0 {
		t.Fatalf("empty minMax = (%v, %v), want (0, 0)", lo, hi)
	}
	if lo, hi := minMax([]float32{nan32()}); lo != 0 || hi != 0 {
		t.Fatalf("NaN-only minMax = (%v, %v), want (0, 0)", lo, hi)
	}
	lo, hi := minMax([]float32{inf32(-1), inf32(1)})
	if lo != -math.MaxFloat32 || hi != math.MaxFloat32 {
		t.Fatalf("Inf minMax = (%v, %v), want float32 extremes", lo, hi)
	}
}
