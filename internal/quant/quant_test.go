package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randVals(rng *rand.Rand, n int, scale float64) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(rng.NormFloat64() * scale)
	}
	return v
}

func TestRTNSymmetricErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := randVals(rng, 1000, 1)
	for _, bits := range []int{2, 4, 8} {
		q := RTNSymmetric(data, bits)
		var amax float64
		for _, v := range data {
			if a := math.Abs(float64(v)); a > amax {
				amax = a
			}
		}
		delta := amax / float64(int64(1)<<(bits-1))
		for i := range data {
			err := math.Abs(float64(q[i]) - float64(data[i]))
			// Clamping at +amax can cost up to delta.
			if err > delta+1e-6 {
				t.Fatalf("bits=%d idx=%d: err %.5f > delta %.5f", bits, i, err, delta)
			}
		}
	}
}

func TestRTNMoreBitsLessError(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := randVals(rng, 4000, 1)
	prev := math.Inf(1)
	for _, bits := range []int{2, 3, 4, 6, 8} {
		m := MSE(data, RTNSymmetric(data, bits))
		if m >= prev {
			t.Fatalf("bits=%d: MSE %.6f not below previous %.6f", bits, m, prev)
		}
		prev = m
	}
}

func TestRTNAsymmetricHandlesOffset(t *testing.T) {
	// A shifted distribution wastes half the symmetric grid; asymmetric
	// quantization must do better.
	rng := rand.New(rand.NewSource(3))
	data := make([]float32, 2000)
	for i := range data {
		data[i] = float32(5 + rng.NormFloat64())
	}
	sym := MSE(data, RTNSymmetric(data, 4))
	asym := MSE(data, RTNAsymmetric(data, 4))
	if asym >= sym {
		t.Fatalf("asymmetric MSE %.6f should beat symmetric %.6f on offset data", asym, sym)
	}
}

func TestRTNGroupwiseBeatsPerTensorWithOutliers(t *testing.T) {
	// Group-wise quantization contains the damage of an outlier to its
	// group — the reason GPTQ-128G/AWQ-128G exist.
	rng := rand.New(rand.NewSource(4))
	data := randVals(rng, 4096, 1)
	data[100] = 80 // massive outlier
	perTensor := MSE(data, RTNAsymmetric(data, 3))
	grouped, bpv := RTNGroupwise(data, 3, 128)
	g := MSE(data, grouped)
	if g >= perTensor {
		t.Fatalf("groupwise MSE %.6f should beat per-tensor %.6f", g, perTensor)
	}
	wantBPV := 3 + 32.0/128
	if math.Abs(bpv-wantBPV) > 1e-9 {
		t.Fatalf("groupwise bpv = %.4f, want %.4f", bpv, wantBPV)
	}
}

func TestToFromUint8RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := randVals(rng, 3000, 2)
	pix, scale, zero := ToUint8(data)
	back := FromUint8(pix, scale, zero)
	lo, hi := minMax(data)
	maxErr := (float64(hi) - float64(lo)) / 255 / 2
	for i := range data {
		if err := math.Abs(float64(back[i]) - float64(data[i])); err > maxErr+1e-6 {
			t.Fatalf("idx %d: err %.6f > half-step %.6f", i, err, maxErr)
		}
	}
}

func TestToUint8Constant(t *testing.T) {
	data := []float32{3.5, 3.5, 3.5}
	pix, scale, zero := ToUint8(data)
	back := FromUint8(pix, scale, zero)
	for i := range back {
		if back[i] != 3.5 {
			t.Fatalf("constant roundtrip: %v", back)
		}
	}
}

func TestToUint8Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(500) + 2
		data := randVals(rng, n, math.Abs(rng.NormFloat64())+0.1)
		pix, scale, zero := ToUint8(data)
		back := FromUint8(pix, scale, zero)
		lo, hi := minMax(data)
		tol := (float64(hi)-float64(lo))/255*0.51 + 1e-5
		for i := range data {
			if math.Abs(float64(back[i])-float64(data[i])) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMXFPFormats(t *testing.T) {
	if MXFP4.Bits() != 4 || MXFP6.Bits() != 6 || MXFP8.Bits() != 8 {
		t.Fatalf("format widths wrong: %d %d %d", MXFP4.Bits(), MXFP6.Bits(), MXFP8.Bits())
	}
	// E2M1 magnitudes are the well-known {0, .5, 1, 1.5, 2, 3, 4, 6}.
	want := []float64{0, 0.5, 1, 1.5, 2, 3, 4, 6}
	if len(MXFP4.grid) != len(want) {
		t.Fatalf("MXFP4 grid %v", MXFP4.grid)
	}
	for i, w := range want {
		if math.Abs(MXFP4.grid[i]-w) > 1e-12 {
			t.Fatalf("MXFP4 grid[%d] = %v, want %v", i, MXFP4.grid[i], w)
		}
	}
}

func TestMXFPQuantizeAccuracyOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := randVals(rng, 4096, 1)
	m4, b4 := MXFPQuantize(data, MXFP4)
	m6, b6 := MXFPQuantize(data, MXFP6)
	m8, b8 := MXFPQuantize(data, MXFP8)
	e4, e6, e8 := MSE(data, m4), MSE(data, m6), MSE(data, m8)
	if !(e8 < e6 && e6 < e4) {
		t.Fatalf("MXFP error order wrong: fp4 %.6f fp6 %.6f fp8 %.6f", e4, e6, e8)
	}
	if !(b4 < b6 && b6 < b8) {
		t.Fatalf("MXFP bpv order wrong: %f %f %f", b4, b6, b8)
	}
	if math.Abs(b4-(4+0.25)) > 1e-9 {
		t.Fatalf("MXFP4 bpv %.4f, want 4.25", b4)
	}
}

func TestMXFPBlockScalingHandlesDynamicRange(t *testing.T) {
	// Values spanning many octaves across blocks: per-block scaling keeps
	// the relative error bounded everywhere.
	data := make([]float32, 128)
	for b := 0; b < 4; b++ {
		mag := math.Pow(10, float64(b)-2)
		for i := 0; i < 32; i++ {
			data[b*32+i] = float32(mag * (1 + float64(i)/40))
		}
	}
	q, _ := MXFPQuantize(data, MXFP6)
	for i := range data {
		rel := math.Abs(float64(q[i])-float64(data[i])) / math.Abs(float64(data[i]))
		if rel > 0.15 {
			t.Fatalf("idx %d: relative error %.3f too large", i, rel)
		}
	}
}

func TestMXFPZeroBlock(t *testing.T) {
	data := make([]float32, 64)
	q, _ := MXFPQuantize(data, MXFP4)
	for i, v := range q {
		if v != 0 {
			t.Fatalf("zero block produced %v at %d", v, i)
		}
	}
}

func TestMSEAndMAE(t *testing.T) {
	a := []float32{0, 0, 0, 0}
	b := []float32{1, -1, 2, 0}
	if got := MSE(a, b); got != 1.5 {
		t.Fatalf("MSE = %v, want 1.5", got)
	}
	if got := MAE(a, b); got != 1 {
		t.Fatalf("MAE = %v, want 1", got)
	}
}
