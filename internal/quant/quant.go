// Package quant implements the scalar quantizers LLM.265 is compared against
// and composed with: round-to-nearest (RTN) quantization in symmetric,
// asymmetric and group-wise forms, 8-bit conversion for the codec front-end,
// and microscaling floating-point (MXFP) formats.
package quant

import (
	"fmt"
	"math"
)

// sanitize maps a possibly non-finite input value onto the finite float64
// range: NaN becomes 0 (a NaN weight must not poison range statistics or
// quantize to platform-dependent garbage — math.Round(NaN) fails every clamp
// comparison and uint8(NaN) is unspecified in Go), and ±Inf clamps to the
// largest finite float32 magnitude.
func sanitize(v float32) float64 {
	f := float64(v)
	switch {
	case math.IsNaN(f):
		return 0
	case math.IsInf(f, 1):
		return math.MaxFloat32
	case math.IsInf(f, -1):
		return -math.MaxFloat32
	}
	return f
}

// RTNSymmetric quantizes data to the given bit width with the paper's
// formula Q(w) = Δ·Round(w/Δ), Δ = max|w| / 2^(N−1), returning the
// dequantized values. Non-finite inputs are sanitized: NaN contributes 0,
// ±Inf clamps to the finite float32 range.
func RTNSymmetric(data []float32, bits int) []float32 {
	if bits < 1 || bits > 16 {
		panic(fmt.Sprintf("quant: bits %d out of range", bits))
	}
	var amax float64
	for _, v := range data {
		if a := math.Abs(sanitize(v)); a > amax {
			amax = a
		}
	}
	out := make([]float32, len(data))
	if amax == 0 {
		return out
	}
	delta := amax / float64(int64(1)<<(bits-1))
	qmin := -float64(int64(1) << (bits - 1))
	qmax := float64(int64(1)<<(bits-1)) - 1
	for i, v := range data {
		q := math.Round(sanitize(v) / delta)
		if q < qmin {
			q = qmin
		}
		if q > qmax {
			q = qmax
		}
		out[i] = float32(q * delta)
	}
	return out
}

// RTNAsymmetric quantizes with a min-max affine mapping (zero-point
// quantization), returning the dequantized values.
func RTNAsymmetric(data []float32, bits int) []float32 {
	out := make([]float32, len(data))
	rtnAsymmetricInto(out, data, bits)
	return out
}

func rtnAsymmetricInto(dst, data []float32, bits int) {
	if bits < 1 || bits > 16 {
		panic(fmt.Sprintf("quant: bits %d out of range", bits))
	}
	lo, hi := minMax(data)
	levels := float64(int64(1)<<bits) - 1
	if hi == lo {
		for i := range dst {
			dst[i] = lo
		}
		return
	}
	scale := (float64(hi) - float64(lo)) / levels
	for i, v := range data {
		q := math.Round((sanitize(v) - float64(lo)) / scale)
		if q < 0 {
			q = 0
		}
		if q > levels {
			q = levels
		}
		dst[i] = float32(float64(lo) + q*scale)
	}
}

// RTNGroupwise applies asymmetric RTN independently to groups of groupSize
// consecutive values (the "-128G" configurations in the paper's Table 1).
// It returns the dequantized values and the effective storage cost in bits
// per value, accounting for one FP16 scale and FP16 zero-point per group.
func RTNGroupwise(data []float32, bits, groupSize int) ([]float32, float64) {
	if groupSize <= 0 {
		panic("quant: groupSize must be positive")
	}
	out := make([]float32, len(data))
	groups := 0
	for start := 0; start < len(data); start += groupSize {
		end := start + groupSize
		if end > len(data) {
			end = len(data)
		}
		rtnAsymmetricInto(out[start:end], data[start:end], bits)
		groups++
	}
	meta := float64(groups) * 32 // FP16 scale + FP16 zero per group
	bpv := float64(bits) + meta/float64(len(data))
	return out, bpv
}

// minMax scans for the finite value range: NaN entries contribute nothing
// (they behave as 0 after sanitization) and ±Inf clamps to the float32
// extremes, so the result is always finite. Empty or all-degenerate input
// yields (0, 0).
func minMax(data []float32) (lo, hi float32) {
	if len(data) == 0 {
		return 0, 0
	}
	lo64, hi64 := math.Inf(1), math.Inf(-1)
	for _, v := range data {
		f := sanitize(v)
		if f < lo64 {
			lo64 = f
		}
		if f > hi64 {
			hi64 = f
		}
	}
	return float32(lo64), float32(hi64)
}

// ToUint8 maps data onto [0, 255] with an affine min-max transform, returning
// the pixels plus the scale and zero needed to invert: v ≈ zero + scale·pix.
// This is the codec front-end conversion (§3.2: "FP16 values need to be
// first rounded to 8 bits ... before feeding to HEVC codec").
//
// Degenerate inputs are deterministic on every platform: NaN values are
// treated as 0 (mapped to the pixel nearest value 0 within the finite range)
// and ±Inf clamps to the largest finite float32 magnitude, so one bad weight
// can no longer corrupt a whole plane nondeterministically.
func ToUint8(data []float32) (pix []uint8, scale, zero float32) {
	lo, hi := minMax(data)
	pix = make([]uint8, len(data))
	if hi == lo {
		return pix, 0, lo
	}
	s := (float64(hi) - float64(lo)) / 255
	inv := 1 / s
	for i, v := range data {
		q := math.Round((sanitize(v) - float64(lo)) * inv)
		if q < 0 {
			q = 0
		}
		if q > 255 {
			q = 255
		}
		pix[i] = uint8(q)
	}
	return pix, float32(s), lo
}

// FromUint8 inverts ToUint8. The common case evaluates the affine map in
// float32, bit-identical to the historical behaviour; only if that overflows
// — extreme scales produced by ±Inf-laced inputs whose range clamps to
// ±MaxFloat32 — is the element re-evaluated in float64 and clamped to the
// finite float32 range, so the reconstruction can never contain ±Inf.
func FromUint8(pix []uint8, scale, zero float32) []float32 {
	out := make([]float32, len(pix))
	s, z := float64(scale), float64(zero)
	for i, p := range pix {
		v := zero + scale*float32(p)
		if f := float64(v); math.IsInf(f, 0) || math.IsNaN(f) {
			v = clampFinite32(z + s*float64(p))
		}
		out[i] = v
	}
	return out
}

// clampFinite32 converts a float64 to float32, clamping to the finite range.
func clampFinite32(v float64) float32 {
	if v > math.MaxFloat32 {
		return math.MaxFloat32
	}
	if v < -math.MaxFloat32 {
		return -math.MaxFloat32
	}
	return float32(v)
}

// MXFPFormat describes a microscaling floating-point element format
// (exponent/mantissa bit split), per the OCP MX spec the paper cites [67].
type MXFPFormat struct {
	Name    string
	ExpBits int
	ManBits int
	grid    []float64 // positive representable magnitudes, ascending
}

// Standard MX element formats.
var (
	MXFP4 = newMXFPFormat("MXFP4", 2, 1)
	MXFP6 = newMXFPFormat("MXFP6", 3, 2)
	MXFP8 = newMXFPFormat("MXFP8", 4, 3)
)

func newMXFPFormat(name string, e, m int) *MXFPFormat {
	f := &MXFPFormat{Name: name, ExpBits: e, ManBits: m}
	bias := 1<<(e-1) - 1
	seen := map[float64]bool{}
	// Subnormals: exponent field 0 → value = mant/2^m · 2^(1-bias).
	for mant := 0; mant < 1<<m; mant++ {
		v := float64(mant) / float64(int(1)<<m) * math.Pow(2, float64(1-bias))
		if !seen[v] {
			seen[v] = true
			f.grid = append(f.grid, v)
		}
	}
	// Normals.
	for exp := 1; exp < 1<<e; exp++ {
		for mant := 0; mant < 1<<m; mant++ {
			v := (1 + float64(mant)/float64(int(1)<<m)) * math.Pow(2, float64(exp-bias))
			if !seen[v] {
				seen[v] = true
				f.grid = append(f.grid, v)
			}
		}
	}
	sortFloats(f.grid)
	return f
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// Bits reports the element width including the sign bit.
func (f *MXFPFormat) Bits() int { return 1 + f.ExpBits + f.ManBits }

// Max reports the largest representable magnitude.
func (f *MXFPFormat) Max() float64 { return f.grid[len(f.grid)-1] }

// nearest returns the closest representable magnitude to |v|.
func (f *MXFPFormat) nearest(v float64) float64 {
	lo, hi := 0, len(f.grid)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if f.grid[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo > 0 && v-f.grid[lo-1] < f.grid[lo]-v {
		return f.grid[lo-1]
	}
	return f.grid[lo]
}

// MXBlockSize is the standard MX scaling-block length.
const MXBlockSize = 32

// MXFPQuantize quantizes data into the MX format: each block of MXBlockSize
// values shares an 8-bit power-of-two scale; elements are rounded to the
// format's grid. Returns dequantized values and storage bits per value
// (element bits plus the amortized shared scale).
func MXFPQuantize(data []float32, f *MXFPFormat) ([]float32, float64) {
	out := make([]float32, len(data))
	blocks := 0
	for start := 0; start < len(data); start += MXBlockSize {
		end := start + MXBlockSize
		if end > len(data) {
			end = len(data)
		}
		blocks++
		var amax float64
		for _, v := range data[start:end] {
			if a := math.Abs(sanitize(v)); a > amax {
				amax = a
			}
		}
		if amax == 0 {
			continue
		}
		// Shared scale: power of two putting amax at the top of the grid.
		e := math.Ceil(math.Log2(amax / f.Max()))
		scale := math.Pow(2, e)
		for i := start; i < end; i++ {
			v := sanitize(data[i]) / scale
			q := f.nearest(math.Abs(v))
			if v < 0 {
				q = -q
			}
			out[i] = clampFinite32(q * scale)
		}
	}
	bpv := float64(f.Bits()) + float64(blocks)*8/float64(len(data))
	return out, bpv
}

// MSE computes the mean squared error between two equal-length slices.
func MSE(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("quant: MSE length mismatch")
	}
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s / float64(len(a))
}

// MAE computes the mean absolute error between two equal-length slices.
func MAE(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("quant: MAE length mismatch")
	}
	var s float64
	for i := range a {
		s += math.Abs(float64(a[i]) - float64(b[i]))
	}
	return s / float64(len(a))
}
