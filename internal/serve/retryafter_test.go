package serve

import (
	"net/http"
	"testing"
	"time"
)

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name  string
		value string
		want  time.Duration
		ok    bool
	}{
		{"delta-seconds", "2", 2 * time.Second, true},
		{"delta-zero", "0", 0, true},
		{"delta-spaces", "  30 ", 30 * time.Second, true},
		{"delta-negative", "-1", 0, false},
		{"http-date-future", now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second, true},
		{"http-date-past", now.Add(-time.Hour).Format(http.TimeFormat), 0, true},
		{"empty", "", 0, false},
		{"garbage", "soon", 0, false},
		{"float", "1.5", 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := ParseRetryAfter(tc.value, now)
			if ok != tc.ok || got != tc.want {
				t.Fatalf("ParseRetryAfter(%q) = (%v, %v), want (%v, %v)", tc.value, got, ok, tc.want, tc.ok)
			}
		})
	}

	// RFC 1123 dates carry whole seconds; a future date through the parser
	// must round-trip within a second even when "now" is mid-second.
	if d, ok := ParseRetryAfter(time.Now().Add(10*time.Second).UTC().Format(http.TimeFormat), time.Now()); !ok || d > 10*time.Second || d < 8*time.Second {
		t.Fatalf("wall-clock HTTP-date parse = (%v, %v), want ~9-10s", d, ok)
	}
}
