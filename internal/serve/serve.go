// Package serve exposes the tensor codec as a long-running HTTP service
// (DESIGN.md §12): the paper's serving scenario — remote KV-cache and weight
// shards moving between GPU nodes — needs the codec behind a network edge
// with admission control, deadlines and observability, not a one-shot CLI.
//
// Endpoints:
//
//	POST /v1/encode   raw float32 LE tensor body → .l265 container
//	POST /v1/decode   .l265 (core) or codec-level container → planes/tensors
//	GET  /healthz     liveness + admission state (503 while draining)
//	GET  /metricsz    JSON snapshot of the shared obs registry
//
// Architecture: every request passes the admission scheduler — a semaphore
// of max-inflight encode/decode jobs backed by a bounded wait queue. A full
// queue answers 429 with Retry-After instead of letting latency collapse;
// a draining server answers 503. Admitted requests run on the shared codec
// worker pool under the request context, so a hung-up client or a blown
// deadline stops burning CPU at the next CTU boundary (codec-level
// cooperative cancellation) and the taxonomy-typed failure maps onto a
// stable HTTP status (see status.go).
package serve

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/kv"
	"repro/internal/obs"
)

// Config sizes the service. The zero value is usable: DefaultConfig bounds
// are applied by New.
type Config struct {
	// Workers sizes the codec's worker pool used by each admitted request.
	// 0 selects runtime.GOMAXPROCS(0) inside the codec.
	Workers int
	// MaxInflight bounds concurrently executing encode/decode jobs.
	// Default 4.
	MaxInflight int
	// MaxQueue bounds requests waiting for an inflight slot before the
	// server answers 429. Default 2×MaxInflight.
	MaxQueue int
	// Deadline is the per-request compute budget (applied from admission,
	// not from connection accept). 0 disables the server-side deadline;
	// clients can always tighten it per request with ?deadline_ms=N.
	Deadline time.Duration
	// MaxBodyBytes caps request bodies. Default 1 GiB.
	MaxBodyBytes int64
	// Metrics receives the service and codec metrics and backs /metricsz.
	// Nil allocates a private registry.
	Metrics *obs.Registry

	// KV mounts a prebuilt session table under /v1/kv/ (tests use this to
	// attach eviction hooks or tight budgets); nil builds one from the
	// KV* fields below with the server's registry and worker count.
	KV *kv.Table
	// KVBudgetBytes caps the kv tier's resident bytes. Default 256 MiB.
	KVBudgetBytes int64
	// KVTTL expires idle kv sessions. 0 selects the kv default (15 min);
	// negative disables expiry.
	KVTTL time.Duration
	// KVFlushRows is the kv tier's chunk granularity in token rows.
	// Default 32.
	KVFlushRows int
	// KVQP is the kv tier's quantizer step. Default 12 (near-lossless —
	// cache rows feed attention directly, unlike weights fetched once).
	KVQP int
	// KVBackend selects the kv tier's entropy backend (CABAC default).
	KVBackend codec.EntropyBackend
}

// withDefaults fills the zero fields.
func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 4
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 2 * c.MaxInflight
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 30
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	return c
}

// serveMetrics holds the pre-resolved service-level metric handles
// (taxonomy mirrors the codec layer's; all durations in nanoseconds):
//
//	serve.encode.requests / serve.decode.requests          counters
//	serve.encode.latency_ns / serve.decode.latency_ns      histograms
//	serve.queue_wait_ns                                    histogram
//	serve.rejected.{queue_full,draining,too_large}         counters
//	serve.errors.{corrupt,truncated,checksum,canceled}     counters
//	serve.responses.{2xx,4xx,5xx}                          counters
type serveMetrics struct {
	encReq, decReq                     *obs.Counter
	kvPutReq, kvGetReq                 *obs.Counter
	encLatency, decLatency, queueWait  *obs.Histogram
	kvLatency                          *obs.Histogram
	rejQueue, rejDraining, rejTooLarge *obs.Counter
	errCorrupt, errTruncated           *obs.Counter
	errChecksum, errCanceled           *obs.Counter
	resp2xx, resp4xx, resp5xx          *obs.Counter
}

func newServeMetrics(reg *obs.Registry) serveMetrics {
	return serveMetrics{
		encReq:       reg.Counter("serve.encode.requests"),
		decReq:       reg.Counter("serve.decode.requests"),
		kvPutReq:     reg.Counter("serve.kv.put.requests"),
		kvGetReq:     reg.Counter("serve.kv.get.requests"),
		kvLatency:    reg.Histogram("serve.kv.latency_ns"),
		encLatency:   reg.Histogram("serve.encode.latency_ns"),
		decLatency:   reg.Histogram("serve.decode.latency_ns"),
		queueWait:    reg.Histogram("serve.queue_wait_ns"),
		rejQueue:     reg.Counter("serve.rejected.queue_full"),
		rejDraining:  reg.Counter("serve.rejected.draining"),
		rejTooLarge:  reg.Counter("serve.rejected.too_large"),
		errCorrupt:   reg.Counter("serve.errors.corrupt"),
		errTruncated: reg.Counter("serve.errors.truncated"),
		errChecksum:  reg.Counter("serve.errors.checksum"),
		errCanceled:  reg.Counter("serve.errors.canceled"),
		resp2xx:      reg.Counter("serve.responses.2xx"),
		resp4xx:      reg.Counter("serve.responses.4xx"),
		resp5xx:      reg.Counter("serve.responses.5xx"),
	}
}

// countStatus rolls an HTTP status into its class counter.
func (m *serveMetrics) countStatus(status int) {
	switch {
	case status >= 500:
		m.resp5xx.Inc()
	case status >= 400:
		m.resp4xx.Inc()
	default:
		m.resp2xx.Inc()
	}
}

// Server is the codec service. Create with New, mount via Handler (an
// http.Handler usable under httptest or any mux), and stop with Drain.
type Server struct {
	cfg Config
	reg *obs.Registry
	m   serveMetrics
	adm *admission
	kv  *kv.Table
	mux *http.ServeMux
}

// New builds a Server from cfg (zero fields defaulted).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	kvTab := cfg.KV
	if kvTab == nil {
		kvTab = kv.New(kv.Config{
			BudgetBytes: cfg.KVBudgetBytes,
			TTL:         cfg.KVTTL,
			FlushRows:   cfg.KVFlushRows,
			QP:          cfg.KVQP,
			Backend:     cfg.KVBackend,
			Workers:     cfg.Workers,
			Metrics:     cfg.Metrics,
		})
	}
	s := &Server{
		cfg: cfg,
		reg: cfg.Metrics,
		m:   newServeMetrics(cfg.Metrics),
		adm: newAdmission(cfg.MaxInflight, cfg.MaxQueue),
		kv:  kvTab,
		mux: http.NewServeMux(),
	}
	s.mux.HandleFunc("/v1/encode", s.handleEncode)
	s.mux.HandleFunc("/v1/decode", s.handleDecode)
	s.mux.HandleFunc("/v1/kv/", s.handleKV)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metricsz", s.handleMetricsz)
	return s
}

// KV returns the session table mounted under /v1/kv/.
func (s *Server) KV() *kv.Table { return s.kv }

// Handler returns the service's http.Handler (the route mux). It is safe
// for concurrent use and for mounting under httptest.NewServer.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the registry backing /metricsz.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Inflight reports currently executing jobs; Queued reports jobs waiting
// for an inflight slot.
func (s *Server) Inflight() int { return s.adm.inflightNow() }

// Queued reports requests waiting in the admission queue.
func (s *Server) Queued() int { return int(s.adm.queued.Load()) }

// Drain stops admitting work (new requests get 503) and blocks until every
// inflight request has finished or ctx expires. It is idempotent; the first
// error (ctx expiry) is returned.
func (s *Server) Drain(ctx context.Context) error {
	done := s.adm.startDrain()
	if done == nil {
		return nil
	}
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Drain has been initiated.
func (s *Server) Draining() bool { return s.adm.isDraining() }

// admission is the request scheduler: a counting semaphore of inflight
// slots plus a bounded wait queue. It is deliberately channel-based so a
// queued request can abandon its wait the moment its context dies.
//
// Drain accounting is a mutex-guarded counter rather than a sync.WaitGroup:
// a request can register (Add from a zero counter) at any moment, including
// concurrently with a drain — a pairing the WaitGroup contract forbids and
// the race detector flags. The mutex makes register-vs-drain a total order:
// a request either registers before the drain flag is set (and the drain
// waits for it) or observes the flag and is rejected.
type admission struct {
	sem      chan struct{} // cap = MaxInflight; a token is one running job
	maxQueue int64
	queued   atomic.Int64

	mu        sync.Mutex
	draining  bool
	active    int           // requests registered via enter and not yet exited
	drainDone chan struct{} // non-nil while a drain waits; closed at active==0
}

func newAdmission(maxInflight, maxQueue int) *admission {
	return &admission{
		sem:      make(chan struct{}, maxInflight),
		maxQueue: int64(maxQueue),
	}
}

func (a *admission) inflightNow() int { return len(a.sem) }

// enter registers a request with the drain accounting; false means the
// server is draining and the request must be rejected. Every true return
// must be balanced by exactly one exit.
func (a *admission) enter() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.draining {
		return false
	}
	a.active++
	return true
}

// exit unregisters a request and, if a drain is waiting and this was the
// last active request, releases it.
func (a *admission) exit() {
	a.mu.Lock()
	a.active--
	if a.active == 0 && a.drainDone != nil {
		close(a.drainDone)
		a.drainDone = nil
	}
	a.mu.Unlock()
}

// startDrain flips the draining flag and returns a channel that closes when
// the last active request exits, or nil when the server is already idle.
func (a *admission) startDrain() chan struct{} {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.draining = true
	if a.active == 0 {
		return nil
	}
	if a.drainDone == nil {
		a.drainDone = make(chan struct{})
	}
	return a.drainDone
}

func (a *admission) isDraining() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.draining
}

// admitError tells the handler how to reject a request that was not
// admitted.
type admitError struct {
	status     int
	retryAfter bool
	reason     string
}

// admit blocks until the request holds an inflight slot, the queue
// overflows, the server drains, or ctx dies. On success it returns a
// release function that must be called exactly once.
func (a *admission) admit(ctx context.Context) (release func(), rej *admitError) {
	if !a.enter() {
		return nil, &admitError{status: http.StatusServiceUnavailable, reason: "server is draining"}
	}
	release = func() {
		<-a.sem
		a.exit()
	}
	// expired rejects a request whose budget died before it could start
	// computing: the slot is handed straight back instead of dispatching a
	// job whose every ctx poll would fail — queue-expiry waste the pool never
	// sees.
	expired := func(err error) (func(), *admitError) {
		<-a.sem
		a.exit()
		return nil, &admitError{status: statusFor(err), reason: "request expired before dispatch: " + err.Error()}
	}
	// Fast path: a free slot right now.
	select {
	case a.sem <- struct{}{}:
		if err := ctx.Err(); err != nil {
			return expired(err)
		}
		return release, nil
	default:
	}
	// Queue path, bounded: beyond maxQueue waiters the request is bounced
	// with 429 + Retry-After so callers back off instead of piling up.
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		a.exit()
		return nil, &admitError{status: http.StatusTooManyRequests, retryAfter: true, reason: "admission queue full"}
	}
	defer a.queued.Add(-1)
	select {
	case a.sem <- struct{}{}:
		// The slot arrived, but the deadline may have passed while this
		// request sat in the queue (a free slot and a dead context can become
		// ready together — select picks arbitrarily). Dispatching it would
		// burn pool time on work that is already 504.
		if err := ctx.Err(); err != nil {
			return expired(err)
		}
		return release, nil
	case <-ctx.Done():
		// The budget blew (or the client hung up) while still queued; map it
		// through the same taxonomy as a mid-encode cancellation so the
		// status is uniform wherever the deadline lands.
		a.exit()
		return nil, &admitError{status: statusFor(ctx.Err()), reason: "request abandoned while queued: " + ctx.Err().Error()}
	}
}
