package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"
)

// TestExpiredRequestNotDispatched is the queue-expiry regression gate: a
// request whose context is already dead when an inflight slot becomes
// available must be bounced with the deadline taxonomy instead of being
// dispatched into the pool. On the pre-fix code the fast path handed the
// slot out without consulting the context, so every such request burned
// pool time just to discover its first ctx poll failed.
func TestExpiredRequestNotDispatched(t *testing.T) {
	// Fast path: slots free, context already expired — deterministic on the
	// old code (the nonblocking select always takes the slot).
	a := newAdmission(1, 4)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	release, rej := a.admit(ctx)
	if rej == nil {
		release()
		t.Fatal("expired request was dispatched into the pool (fast path)")
	}
	if rej.status != http.StatusGatewayTimeout {
		t.Fatalf("expired fast-path admit status = %d, want 504", rej.status)
	}
	if a.inflightNow() != 0 {
		t.Fatalf("expired admit leaked an inflight slot (%d held)", a.inflightNow())
	}

	// A canceled (rather than deadline-blown) context maps to 499.
	cctx, ccancel := context.WithCancel(context.Background())
	ccancel()
	if _, rej := a.admit(cctx); rej == nil || rej.status != StatusClientClosedRequest {
		t.Fatalf("canceled fast-path admit = %+v, want 499 rejection", rej)
	}

	// Queue path: the deadline dies while the request waits, then the slot
	// frees — both select cases are ready and the dequeue must still bounce.
	// The old code won this race only by accident ~half the time; run several
	// rounds so the pre-fix failure is deterministic in practice.
	for round := 0; round < 20; round++ {
		a := newAdmission(1, 4)
		hold, rej := a.admit(context.Background())
		if rej != nil {
			t.Fatalf("round %d: holder rejected: %s", round, rej.reason)
		}
		qctx, qcancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
		done := make(chan *admitError, 1)
		go func() {
			release, rej := a.admit(qctx)
			if release != nil {
				release()
			}
			done <- rej
		}()
		// Let the queued request register, let its deadline blow, then free
		// the slot so slot-ready and ctx-dead race at the dequeue select.
		deadline := time.Now().Add(5 * time.Second)
		for a.queued.Load() == 0 && time.Now().Before(deadline) {
			time.Sleep(100 * time.Microsecond)
		}
		time.Sleep(15 * time.Millisecond)
		hold()
		rej = <-done
		qcancel()
		if rej == nil {
			t.Fatalf("round %d: request with a blown deadline was dispatched from the queue", round)
		}
		if rej.status != http.StatusGatewayTimeout {
			t.Fatalf("round %d: dequeue-expired status = %d, want 504", round, rej.status)
		}
		if a.inflightNow() != 0 {
			t.Fatalf("round %d: expired dequeue leaked a slot", round)
		}
	}
}

// TestExpiredRequestOverHTTP pins the end-to-end mapping: a request that
// expires while queued answers 504 with the deadline_exceeded class.
func TestExpiredRequestOverHTTP(t *testing.T) {
	s, url := newTestServer(t, Config{MaxInflight: 1, MaxQueue: 2})
	// Occupy the one slot so the request under test has to queue.
	s.adm.enter()
	s.adm.sem <- struct{}{}

	status := make(chan int, 1)
	body := make(chan []byte, 1)
	go func() {
		st, b, _ := post(t, url+"/v1/decode?deadline_ms=20", []byte("L265\x02 body"))
		status <- st
		body <- b
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Queued() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(30 * time.Millisecond) // budget is now blown in the queue
	<-s.adm.sem
	s.adm.exit()

	select {
	case st := <-status:
		if st != http.StatusGatewayTimeout {
			t.Fatalf("status = %d, want 504 (%s)", st, <-body)
		}
		var eb errorBody
		if err := json.Unmarshal(<-body, &eb); err != nil || eb.Class != "deadline_exceeded" {
			t.Fatalf("error class = %q (err %v), want deadline_exceeded", eb.Class, err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("queued request never completed")
	}
}

// TestHealthzDrainingBody pins the machine-readable draining contract the
// proxy's prober keys on: healthy → 200 with draining=false; once Drain has
// begun → 503 with draining=true, while the listener still answers.
func TestHealthzDrainingBody(t *testing.T) {
	s, url := newTestServer(t, Config{MaxInflight: 2})
	readHealth := func() (int, map[string]any) {
		resp, err := http.Get(url + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		blob, _ := io.ReadAll(resp.Body)
		var m map[string]any
		if err := json.Unmarshal(blob, &m); err != nil {
			t.Fatalf("healthz body not JSON: %v (%s)", err, blob)
		}
		return resp.StatusCode, m
	}

	st, m := readHealth()
	if st != http.StatusOK {
		t.Fatalf("healthy healthz = %d, want 200", st)
	}
	if v, ok := m["draining"].(bool); !ok || v {
		t.Fatalf("healthy healthz draining = %v, want false", m["draining"])
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	st, m = readHealth()
	if st != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", st)
	}
	if v, ok := m["draining"].(bool); !ok || !v {
		t.Fatalf("draining healthz draining = %v, want true", m["draining"])
	}
}
