package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/kv"
)

// The kv session endpoints (DESIGN.md §16):
//
//	PUT    /v1/kv/{session}?dim=D[&at=T]   append token rows (raw float32 LE body)
//	GET    /v1/kv/{session}[?range=t0-t1]  read token rows back (float32 LE body)
//	DELETE /v1/kv/{session}                drop the session
//
// Status taxonomy on top of the shared one (status.go):
//
//	404  session not found (or expired)
//	409  dim / at= precondition conflicts with the session
//	416  requested range has no overlap with the available window
//	507  append cannot fit under the byte budget even after eviction
//	206  range served, but narrowed by prefix eviction or end clamping
//
// Every GET answer (2xx or 416) carries the session window headers:
// X-Llm265-Kv-From/To/Total/Committed/Evicted/Dim — a 206's From is exactly
// where eviction cut the prefix, which the soak harness cross-checks against
// the table's eviction log.

// parseKVRange parses ?range=t0-t1; "t0-" means to the end, absent means the
// whole session.
func parseKVRange(raw string) (int, int, error) {
	if raw == "" {
		return 0, -1, nil
	}
	lo, hi, ok := strings.Cut(raw, "-")
	if !ok {
		return 0, 0, fmt.Errorf("serve: range %q is not t0-t1", raw)
	}
	t0, err := strconv.Atoi(lo)
	if err != nil || t0 < 0 {
		return 0, 0, fmt.Errorf("serve: bad range start %q", lo)
	}
	t1 := -1
	if hi != "" {
		if t1, err = strconv.Atoi(hi); err != nil || t1 < t0 {
			return 0, 0, fmt.Errorf("serve: bad range end %q", hi)
		}
	}
	return t0, t1, nil
}

// writeKVError maps the kv error taxonomy onto the statuses above; anything
// unrecognized falls through to the shared codec/context mapping.
func (s *Server) writeKVError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, kv.ErrNotFound):
		s.writeJSONError(w, http.StatusNotFound, err.Error(), "not_found")
	case errors.Is(err, kv.ErrDimMismatch), errors.Is(err, kv.ErrOffsetMismatch):
		s.writeJSONError(w, http.StatusConflict, err.Error(), "conflict")
	case errors.Is(err, kv.ErrBudget):
		s.writeJSONError(w, http.StatusInsufficientStorage, err.Error(), "budget")
	case errors.Is(err, kv.ErrRangeUnavailable):
		s.writeJSONError(w, http.StatusRequestedRangeNotSatisfiable, err.Error(), "range_unavailable")
	default:
		s.writeError(w, err)
	}
}

// setKVWindow stamps the session window headers on every kv GET answer.
func setKVWindow(w http.ResponseWriter, res kv.ReadResult) {
	h := w.Header()
	h.Set("X-Llm265-Kv-From", strconv.Itoa(res.From))
	h.Set("X-Llm265-Kv-To", strconv.Itoa(res.To))
	h.Set("X-Llm265-Kv-Total", strconv.Itoa(res.Total))
	h.Set("X-Llm265-Kv-Committed", strconv.Itoa(res.Committed))
	h.Set("X-Llm265-Kv-Evicted", strconv.Itoa(res.Evicted))
	h.Set("X-Llm265-Kv-Dim", strconv.Itoa(res.Dim))
}

// handleKV routes /v1/kv/{session} by method.
func (s *Server) handleKV(w http.ResponseWriter, r *http.Request) {
	session := strings.TrimPrefix(r.URL.Path, "/v1/kv/")
	if session == "" || strings.Contains(session, "/") {
		s.writeJSONError(w, http.StatusNotFound, "serve: kv path is /v1/kv/{session}", "not_found")
		return
	}
	start := time.Now()
	defer func() { s.m.kvLatency.Observe(time.Since(start).Nanoseconds()) }()
	switch r.Method {
	case http.MethodPut:
		s.handleKVPut(w, r, session)
	case http.MethodGet:
		s.handleKVGet(w, r, session)
	case http.MethodDelete:
		s.handleKVDelete(w, session)
	default:
		s.writeJSONError(w, http.StatusMethodNotAllowed, "serve: PUT, GET or DELETE only", "bad_request")
	}
}

// handleKVPut appends token rows: a raw float32 LE body of whole rows, with
// ?dim=D (required on first use) and optional ?at=T asserting the session's
// current length — the streaming idempotency precondition. Completed flush
// groups are encoded incrementally; the response reports what committed.
func (s *Server) handleKVPut(w http.ResponseWriter, r *http.Request, session string) {
	s.m.kvPutReq.Inc()
	q := r.URL.Query()
	ctx, cancel, err := s.requestCtx(r)
	if err != nil {
		s.writeJSONError(w, http.StatusBadRequest, err.Error(), "bad_request")
		return
	}
	defer cancel()
	dim, err := queryInt(q, "dim", 0)
	if err == nil && dim < 0 {
		err = fmt.Errorf("serve: dim=%d must be positive", dim)
	}
	var at int
	if err == nil {
		at, err = queryInt(q, "at", -1)
	}
	if err != nil {
		s.writeJSONError(w, http.StatusBadRequest, err.Error(), "bad_request")
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	if len(body)%4 != 0 {
		s.writeJSONError(w, http.StatusBadRequest,
			fmt.Sprintf("serve: %d-byte body is not whole float32s", len(body)), "bad_request")
		return
	}

	release, ok := s.admitOrReject(w, ctx)
	if !ok {
		return
	}
	defer release()

	res, err := s.kv.Append(ctx, session, dim, at, bytesToFloat32s(body))
	if err != nil {
		s.writeKVError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	json.NewEncoder(w).Encode(res)
	s.m.countStatus(http.StatusOK)
}

// handleKVGet serves tokens [t0, t1) back as a raw float32 LE body. A window
// narrowed by prefix eviction (or an explicit end past the session) answers
// 206; a request with no overlap at all answers 416. Both carry the window
// headers, so a client can see exactly which tokens it got and which are
// gone.
func (s *Server) handleKVGet(w http.ResponseWriter, r *http.Request, session string) {
	s.m.kvGetReq.Inc()
	q := r.URL.Query()
	ctx, cancel, err := s.requestCtx(r)
	if err != nil {
		s.writeJSONError(w, http.StatusBadRequest, err.Error(), "bad_request")
		return
	}
	defer cancel()
	t0, t1, err := parseKVRange(q.Get("range"))
	if err != nil {
		s.writeJSONError(w, http.StatusBadRequest, err.Error(), "bad_request")
		return
	}

	release, ok := s.admitOrReject(w, ctx)
	if !ok {
		return
	}
	defer release()

	res, err := s.kv.Read(ctx, session, t0, t1)
	switch {
	case errors.Is(err, kv.ErrRangeUnavailable):
		setKVWindow(w, res)
		s.writeKVError(w, err)
		return
	case err != nil:
		s.writeKVError(w, err)
		return
	}
	setKVWindow(w, res)
	status := http.StatusOK
	if res.From > t0 || (t1 >= 0 && res.To < t1) {
		status = http.StatusPartialContent
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(status)
	w.Write(float32sToBytes(res.Vals))
	s.m.countStatus(status)
}

// handleKVDelete drops the session. Deletion is cheap bookkeeping, so it
// skips admission — a drain must not wedge session cleanup.
func (s *Server) handleKVDelete(w http.ResponseWriter, session string) {
	if err := s.kv.Delete(session); err != nil {
		s.writeKVError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
	s.m.countStatus(http.StatusNoContent)
}
