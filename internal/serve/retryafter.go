package serve

import (
	"net/http"
	"strconv"
	"strings"
	"time"
)

// ParseRetryAfter interprets a Retry-After header value per RFC 9110
// §10.2.3: either a non-negative integer delta in seconds ("120") or an
// HTTP-date ("Fri, 08 Aug 2026 15:04:05 GMT", plus the legacy RFC 850 and
// asctime forms http.ParseTime accepts). The returned duration is how long
// the caller should wait from now; a date already in the past parses as 0.
// ok is false for an empty, negative or unparseable value — callers fall
// back to their own backoff schedule then.
//
// The helper is shared by every client of the service: the proxy's retry
// loop and the bench -serve load generator both honor 429/503 hints through
// it, so the two sides of the protocol cannot drift.
func ParseRetryAfter(value string, now time.Time) (wait time.Duration, ok bool) {
	value = strings.TrimSpace(value)
	if value == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(value); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(value); err == nil {
		d := t.Sub(now)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}
