package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/codec"
)

// StatusClientClosedRequest is nginx's de-facto standard 499 for "the
// client hung up before we answered" — distinct from 504 so dashboards can
// tell impatient clients from blown compute budgets.
const StatusClientClosedRequest = 499

// statusFor maps the codec/core error taxonomy (plus cancellation) onto
// stable HTTP statuses — the contract pinned by TestErrorTaxonomyStatuses:
//
//	codec.ErrTruncated         → 400 Bad Request        (stream ends early: refetch)
//	codec.ErrChecksum          → 409 Conflict           (v3 CRC mismatch: bytes rotted)
//	codec.ErrCorrupt           → 422 Unprocessable      (structurally wrong bitstream)
//	context.DeadlineExceeded   → 504 Gateway Timeout    (compute budget blown)
//	context.Canceled           → 499 (client closed request)
//	anything else              → 400 Bad Request        (malformed request inputs)
//
// Order matters: cancellation is checked first because a canceled call
// returns bare ctx.Err() that must never be mistaken for a payload error,
// and ErrTruncated/ErrChecksum are checked before ErrCorrupt in case a
// future error value wraps several classes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest
	case errors.Is(err, codec.ErrChecksum):
		return http.StatusConflict
	case errors.Is(err, codec.ErrTruncated):
		return http.StatusBadRequest
	case errors.Is(err, codec.ErrCorrupt):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusBadRequest
	}
}

// errClass names err's taxonomy class for the JSON error body and the
// serve.errors.* counters.
func errClass(err error) string {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline_exceeded"
	case errors.Is(err, context.Canceled):
		return "canceled"
	case errors.Is(err, codec.ErrChecksum):
		return "checksum"
	case errors.Is(err, codec.ErrTruncated):
		return "truncated"
	case errors.Is(err, codec.ErrCorrupt):
		return "corrupt"
	default:
		return "bad_request"
	}
}

// errorBody is the JSON error envelope every non-2xx response carries.
type errorBody struct {
	Error string `json:"error"`
	Class string `json:"class"`
}

// writeError emits the JSON error envelope with the mapped status and rolls
// the taxonomy counters.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := statusFor(err)
	switch {
	case codec.IsCancellation(err):
		s.m.errCanceled.Inc()
	case errors.Is(err, codec.ErrChecksum):
		s.m.errChecksum.Inc()
	case errors.Is(err, codec.ErrTruncated):
		s.m.errTruncated.Inc()
	case errors.Is(err, codec.ErrCorrupt):
		s.m.errCorrupt.Inc()
	}
	s.writeJSONError(w, status, err.Error(), errClass(err))
}

// writeJSONError writes an explicit status + message + class, for rejects
// that do not originate from a Go error value (429, 503, 413, 405).
func (s *Server) writeJSONError(w http.ResponseWriter, status int, msg, class string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: msg, Class: class})
	s.m.countStatus(status)
}
