package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/dct"
	"repro/internal/frame"
)

// requestCtx derives the compute context for one request: the connection
// context (dies when the client hangs up) tightened by the server's default
// deadline and, if present, the request's ?deadline_ms=N (whichever is
// sooner). The returned cancel must always be called.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc, error) {
	d := s.cfg.Deadline
	if raw := r.URL.Query().Get("deadline_ms"); raw != "" {
		ms, err := strconv.Atoi(raw)
		if err != nil || ms <= 0 {
			return nil, nil, fmt.Errorf("serve: bad deadline_ms %q", raw)
		}
		if qd := time.Duration(ms) * time.Millisecond; d == 0 || qd < d {
			d = qd
		}
	}
	if d > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		return ctx, cancel, nil
	}
	ctx, cancel := context.WithCancel(r.Context())
	return ctx, cancel, nil
}

// queryBool parses a boolean query parameter; absent means false, a bare
// "?checksum" (empty value) means true.
func queryBool(q url.Values, key string) (bool, error) {
	if !q.Has(key) {
		return false, nil
	}
	raw := q.Get(key)
	if raw == "" {
		return true, nil
	}
	v, err := strconv.ParseBool(raw)
	if err != nil {
		return false, fmt.Errorf("serve: bad boolean %s=%q", key, raw)
	}
	return v, nil
}

// queryInt parses an integer query parameter with a default.
func queryInt(q url.Values, key string, def int) (int, error) {
	raw := q.Get(key)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("serve: bad integer %s=%q", key, raw)
	}
	return v, nil
}

// optionsFromQuery maps query parameters onto core.Options — the same knobs
// the CLI exposes: profile (h264|h265|av1), backend (cabac|rans), checksum,
// index, fast-search, per-row, max-frame-w/h. Workers always comes from the
// server config so one client cannot oversubscribe the pool.
func (s *Server) optionsFromQuery(q url.Values) (core.Options, error) {
	o := core.DefaultOptions()
	o.Workers = s.cfg.Workers
	o.Metrics = s.reg
	switch prof := q.Get("profile"); prof {
	case "", "h265", "hevc":
		o.Profile = codec.HEVC
	case "h264", "avc":
		o.Profile = codec.H264
	case "av1":
		o.Profile = codec.AV1
	default:
		return o, fmt.Errorf("serve: unknown profile %q (want h264|h265|av1)", prof)
	}
	var err error
	if o.Backend, err = codec.ParseBackend(q.Get("backend")); err != nil {
		return o, fmt.Errorf("serve: %w", err)
	}
	if o.Checksum, err = queryBool(q, "checksum"); err != nil {
		return o, err
	}
	if o.Index, err = queryBool(q, "index"); err != nil {
		return o, err
	}
	if o.FastSearch, err = queryBool(q, "fast-search"); err != nil {
		return o, err
	}
	if o.PerRowQuant, err = queryBool(q, "per-row"); err != nil {
		return o, err
	}
	if o.MaxFrameW, err = queryInt(q, "max-frame-w", o.MaxFrameW); err != nil {
		return o, err
	}
	if o.MaxFrameH, err = queryInt(q, "max-frame-h", o.MaxFrameH); err != nil {
		return o, err
	}
	if o.MaxFrameW <= 0 || o.MaxFrameH <= 0 {
		return o, fmt.Errorf("serve: frame bounds %dx%d must be positive", o.MaxFrameW, o.MaxFrameH)
	}
	return o, nil
}

// readBody slurps the request body under the configured cap, mapping an
// overflow to 413. A read that fails because the request context died is the
// client hanging up (or the deadline blowing) mid-body — that classifies as
// 499/504 through the shared taxonomy, never as the client's 400: a
// streaming PUT abandoned halfway is not a malformed request.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.m.rejTooLarge.Inc()
			s.writeJSONError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("serve: body exceeds %d bytes", s.cfg.MaxBodyBytes), "too_large")
			return nil, false
		}
		if cerr := r.Context().Err(); cerr != nil {
			s.m.errCanceled.Inc()
			s.writeJSONError(w, statusFor(cerr), "serve: reading body: "+err.Error(), errClass(cerr))
			return nil, false
		}
		s.writeJSONError(w, http.StatusBadRequest, "serve: reading body: "+err.Error(), "bad_request")
		return nil, false
	}
	return body, true
}

// admitOrReject runs the admission scheduler for one request, recording the
// queue wait. ok=false means the rejection response has been written.
func (s *Server) admitOrReject(w http.ResponseWriter, ctx context.Context) (release func(), ok bool) {
	waitStart := time.Now()
	release, rej := s.adm.admit(ctx)
	s.m.queueWait.Observe(time.Since(waitStart).Nanoseconds())
	if rej != nil {
		switch rej.status {
		case http.StatusTooManyRequests:
			s.m.rejQueue.Inc()
			w.Header().Set("Retry-After", "1")
		case http.StatusServiceUnavailable:
			s.m.rejDraining.Inc()
		}
		class := "rejected"
		switch rej.status {
		case http.StatusGatewayTimeout:
			class = "deadline_exceeded"
			s.m.errCanceled.Inc()
		case StatusClientClosedRequest:
			class = "canceled"
			s.m.errCanceled.Inc()
		}
		s.writeJSONError(w, rej.status, "serve: "+rej.reason, class)
		return nil, false
	}
	return release, true
}

// handleEncode is POST /v1/encode: a raw float32 LE tensor body plus
// geometry query params in, a .l265 container out.
func (s *Server) handleEncode(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeJSONError(w, http.StatusMethodNotAllowed, "serve: POST only", "bad_request")
		return
	}
	s.m.encReq.Inc()
	start := time.Now()
	defer func() { s.m.encLatency.Observe(time.Since(start).Nanoseconds()) }()

	q := r.URL.Query()
	ctx, cancel, err := s.requestCtx(r)
	if err != nil {
		s.writeJSONError(w, http.StatusBadRequest, err.Error(), "bad_request")
		return
	}
	defer cancel()
	opts, err := s.optionsFromQuery(q)
	if err != nil {
		s.writeJSONError(w, http.StatusBadRequest, err.Error(), "bad_request")
		return
	}
	layers, err := queryInt(q, "layers", 1)
	if err == nil && layers <= 0 {
		err = fmt.Errorf("serve: layers=%d must be positive", layers)
	}
	var rows, cols, qp int
	if err == nil {
		rows, err = queryInt(q, "rows", 0)
	}
	if err == nil {
		cols, err = queryInt(q, "cols", 0)
	}
	if err == nil && (rows <= 0 || cols <= 0) {
		err = fmt.Errorf("serve: rows=%d cols=%d are required and must be positive", rows, cols)
	}
	if err == nil {
		qp, err = queryInt(q, "qp", 30)
	}
	if err == nil && (qp < 0 || qp > dct.MaxQP) {
		err = fmt.Errorf("serve: qp=%d out of range [0,%d]", qp, dct.MaxQP)
	}
	if err == nil && int64(layers)*int64(rows)*int64(cols) > s.cfg.MaxBodyBytes/4 {
		err = fmt.Errorf("serve: %d×%d×%d tensor exceeds the body cap", layers, rows, cols)
	}
	if err != nil {
		s.writeJSONError(w, http.StatusBadRequest, err.Error(), "bad_request")
		return
	}

	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	want := 4 * layers * rows * cols
	if len(body) != want {
		s.writeJSONError(w, http.StatusBadRequest,
			fmt.Sprintf("serve: body is %d bytes, %d×%d×%d float32 tensor needs %d", len(body), layers, rows, cols, want),
			"bad_request")
		return
	}

	release, ok := s.admitOrReject(w, ctx)
	if !ok {
		return
	}
	defer release()

	vals := bytesToFloat32s(body)
	stack := make([]*core.Tensor, layers)
	per := rows * cols
	for l := 0; l < layers; l++ {
		t := core.NewTensor(rows, cols)
		copy(t.Data, vals[l*per:(l+1)*per])
		stack[l] = t
	}
	enc, err := opts.EncodeStackCtx(ctx, stack, qp)
	if err != nil {
		s.writeError(w, err)
		return
	}
	out := enc.Marshal()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Llm265-Bits-Per-Value", strconv.FormatFloat(enc.BitsPerValue(), 'f', 4, 64))
	w.Header().Set("X-Llm265-Chunks", strconv.Itoa(enc.Stats.Chunks))
	w.WriteHeader(http.StatusOK)
	w.Write(out)
	s.m.countStatus(http.StatusOK)
}

// handleDecode is POST /v1/decode. The container kind is auto-detected from
// the bytes: a core ".l265" container ("L265T\x01") decodes to a float32 LE
// tensor body; a codec-level container ("L265" + version 1|2|3) decodes to
// a GPLN plane body, byte-comparable against the golden corpus. With
// ?partial=1 a damaged stream answers 206 with whatever verified, instead
// of an error.
func (s *Server) handleDecode(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeJSONError(w, http.StatusMethodNotAllowed, "serve: POST only", "bad_request")
		return
	}
	s.m.decReq.Inc()
	start := time.Now()
	defer func() { s.m.decLatency.Observe(time.Since(start).Nanoseconds()) }()

	q := r.URL.Query()
	ctx, cancel, err := s.requestCtx(r)
	if err != nil {
		s.writeJSONError(w, http.StatusBadRequest, err.Error(), "bad_request")
		return
	}
	defer cancel()
	partial, err := queryBool(q, "partial")
	if err != nil {
		s.writeJSONError(w, http.StatusBadRequest, err.Error(), "bad_request")
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}

	release, ok := s.admitOrReject(w, ctx)
	if !ok {
		return
	}
	defer release()

	// The sniff window is magic + kind byte. A body too short to hold it is
	// truncation (every valid container is longer), not corruption — the
	// client should refetch, so it must see 400, never 422 or a misroute.
	switch {
	case len(body) < 5:
		s.writeError(w, fmt.Errorf("serve: %d-byte body ends inside the container magic: %w",
			len(body), codec.ErrTruncated))
	case string(body[:4]) != "L265":
		s.writeError(w, fmt.Errorf("serve: unrecognized container: %w", codec.ErrCorrupt))
	case body[4] == 'T':
		s.decodeCore(w, ctx, body, partial)
	case body[4] >= 1 && body[4] <= 3:
		s.decodeCodec(w, ctx, body, partial)
	default:
		s.writeError(w, fmt.Errorf("serve: unsupported container version %d: %w",
			body[4], codec.ErrCorrupt))
	}
}

// decodeCore serves a core .l265 container back as a float32 LE tensor
// body with the geometry in X-Llm265-* headers.
func (s *Server) decodeCore(w http.ResponseWriter, ctx context.Context, body []byte, partial bool) {
	enc, err := core.UnmarshalEncoded(body)
	if err != nil {
		s.writeError(w, err)
		return
	}
	opts := core.DefaultOptions()
	opts.Workers = s.cfg.Workers
	opts.Metrics = s.reg

	status := http.StatusOK
	var stack []*core.Tensor
	if partial {
		var report *core.DecodeReport
		stack, report, err = opts.DecodeStackPartialCtx(ctx, enc)
		if err == nil && !report.Complete() {
			status = http.StatusPartialContent
			w.Header().Set("X-Llm265-Failed-Chunks", strconv.Itoa(report.FailedChunks))
			w.Header().Set("X-Llm265-Recovered-Planes", strconv.Itoa(report.RecoveredPlanes))
			w.Header().Set("X-Llm265-Total-Planes", strconv.Itoa(report.TotalPlanes))
		}
	} else {
		stack, err = opts.DecodeStackCtx(ctx, enc)
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Llm265-Layers", strconv.Itoa(enc.Layers))
	w.Header().Set("X-Llm265-Rows", strconv.Itoa(enc.Rows))
	w.Header().Set("X-Llm265-Cols", strconv.Itoa(enc.Cols))
	w.WriteHeader(status)
	for _, t := range stack {
		w.Write(float32sToBytes(t.Data))
	}
	s.m.countStatus(status)
}

// decodeCodec serves a codec-level container back as a GPLN plane body —
// the golden conformance format, so corpus vectors round-trip through HTTP
// byte-identically.
func (s *Server) decodeCodec(w http.ResponseWriter, ctx context.Context, body []byte, partial bool) {
	status := http.StatusOK
	var planes []*frame.Plane
	if partial {
		res, err := codec.DecodePartialCtx(ctx, body, s.cfg.Workers, s.reg)
		if err != nil {
			s.writeError(w, err)
			return
		}
		planes = res.Planes
		if !res.OK() {
			status = http.StatusPartialContent
			w.Header().Set("X-Llm265-Failed-Chunks", strconv.Itoa(len(res.Errors)))
			w.Header().Set("X-Llm265-Recovered-Planes", strconv.Itoa(res.Recovered()))
			w.Header().Set("X-Llm265-Total-Planes", strconv.Itoa(len(res.Planes)))
		}
	} else {
		var err error
		planes, err = codec.DecodeWorkersCtx(ctx, body, s.cfg.Workers, s.reg)
		if err != nil {
			s.writeError(w, err)
			return
		}
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Llm265-Planes", strconv.Itoa(len(planes)))
	w.WriteHeader(status)
	w.Write(marshalPlanes(planes))
	s.m.countStatus(status)
}

// handleHealthz is GET /healthz: 200 with the admission state while
// serving, 503 once draining so load balancers rotate the instance out.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeJSONError(w, http.StatusMethodNotAllowed, "serve: GET only", "bad_request")
		return
	}
	status := http.StatusOK
	state := "ok"
	draining := s.adm.isDraining()
	if draining {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// The explicit draining field is the machine-readable contract the
	// proxy's active prober keys on: a draining backend is ejected from
	// rotation while its listener is still up, so inflight work finishes
	// without new work arriving (DESIGN.md §14).
	json.NewEncoder(w).Encode(map[string]any{
		"status":       state,
		"draining":     draining,
		"inflight":     s.Inflight(),
		"queued":       s.Queued(),
		"max_inflight": s.cfg.MaxInflight,
		"max_queue":    s.cfg.MaxQueue,
	})
}

// handleMetricsz is GET /metricsz: the JSON snapshot of the shared obs
// registry (serve.*, codec.* and core.* metrics together).
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeJSONError(w, http.StatusMethodNotAllowed, "serve: GET only", "bad_request")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.reg.WriteJSON(w)
}
