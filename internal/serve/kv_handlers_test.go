package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"

	"repro/internal/kv"
)

// kvRows generates deterministic token rows keyed by absolute row index
// (mirrors the kv package's generator so content is schedule-independent).
func kvRows(seed int64, start, n, dim int) []float32 {
	out := make([]float32, n*dim)
	for r := 0; r < n; r++ {
		rng := rand.New(rand.NewSource(seed*1_000_003 + int64(start+r)))
		base := rng.Float32() * 8
		for c := 0; c < dim; c++ {
			out[r*dim+c] = base + rng.Float32()
		}
	}
	return out
}

func doKV(h http.Handler, method, target string, body []byte) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, target, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func kvHeader(t *testing.T, rec *httptest.ResponseRecorder, name string) int {
	t.Helper()
	v, err := strconv.Atoi(rec.Header().Get("X-Llm265-Kv-" + name))
	if err != nil {
		t.Fatalf("header X-Llm265-Kv-%s = %q: %v", name, rec.Header().Get("X-Llm265-Kv-"+name), err)
	}
	return v
}

// TestKVHTTPRoundtrip drives the session lifecycle end to end over HTTP:
// streamed PUTs with at= preconditions, full and ranged GETs byte-identical
// to the table's own reads, window headers, and DELETE.
func TestKVHTTPRoundtrip(t *testing.T) {
	s := New(Config{Workers: 1, KVFlushRows: 8, KVQP: 12})
	h := s.Handler()
	const dim = 16
	vals := kvRows(1, 0, 20, dim)

	rec := doKV(h, "PUT", "/v1/kv/sess?dim=16&at=0", float32sToBytes(vals[:10*dim]))
	if rec.Code != http.StatusOK {
		t.Fatalf("PUT 1: %d %s", rec.Code, rec.Body.String())
	}
	var res kv.AppendResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Total != 10 || res.Committed != 8 || res.NewChunks != 1 {
		t.Fatalf("PUT 1 result %+v", res)
	}
	rec = doKV(h, "PUT", "/v1/kv/sess?at=10", float32sToBytes(vals[10*dim:]))
	if rec.Code != http.StatusOK {
		t.Fatalf("PUT 2: %d %s", rec.Code, rec.Body.String())
	}

	want, err := s.KV().Read(context.Background(), "sess", 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	rec = doKV(h, "GET", "/v1/kv/sess", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET: %d %s", rec.Code, rec.Body.String())
	}
	if !bytes.Equal(rec.Body.Bytes(), float32sToBytes(want.Vals)) {
		t.Fatal("GET body differs from the table's own read")
	}
	if kvHeader(t, rec, "From") != 0 || kvHeader(t, rec, "To") != 20 ||
		kvHeader(t, rec, "Total") != 20 || kvHeader(t, rec, "Committed") != 16 ||
		kvHeader(t, rec, "Dim") != dim {
		t.Fatalf("GET headers: %v", rec.Header())
	}

	rec = doKV(h, "GET", "/v1/kv/sess?range=5-13", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("ranged GET: %d %s", rec.Code, rec.Body.String())
	}
	if !bytes.Equal(rec.Body.Bytes(), float32sToBytes(want.Vals[5*dim:13*dim])) {
		t.Fatal("ranged GET body mismatch")
	}

	// An end past the session clamps and reports partial content.
	rec = doKV(h, "GET", "/v1/kv/sess?range=15-25", nil)
	if rec.Code != http.StatusPartialContent {
		t.Fatalf("clamped GET: %d", rec.Code)
	}
	if kvHeader(t, rec, "To") != 20 {
		t.Fatalf("clamped GET To = %d", kvHeader(t, rec, "To"))
	}
	if !bytes.Equal(rec.Body.Bytes(), float32sToBytes(want.Vals[15*dim:])) {
		t.Fatal("clamped GET body mismatch")
	}

	if rec = doKV(h, "DELETE", "/v1/kv/sess", nil); rec.Code != http.StatusNoContent {
		t.Fatalf("DELETE: %d", rec.Code)
	}
	if rec = doKV(h, "GET", "/v1/kv/sess", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("GET after DELETE: %d", rec.Code)
	}
}

// TestKVHTTPTaxonomy pins the kv endpoints' status taxonomy.
func TestKVHTTPTaxonomy(t *testing.T) {
	s := New(Config{Workers: 1, KVFlushRows: 4, KVQP: 12})
	h := s.Handler()
	body := float32sToBytes(kvRows(1, 0, 6, 8))
	if rec := doKV(h, "PUT", "/v1/kv/s?dim=8&at=0", body); rec.Code != http.StatusOK {
		t.Fatalf("setup PUT: %d %s", rec.Code, rec.Body.String())
	}

	cases := []struct {
		name, method, target string
		body                 []byte
		want                 int
	}{
		{"offset conflict", "PUT", "/v1/kv/s?at=3", body, http.StatusConflict},
		{"dim conflict", "PUT", "/v1/kv/s?dim=16&at=6", body, http.StatusConflict},
		{"ragged body", "PUT", "/v1/kv/s?at=6", []byte{1, 2, 3}, http.StatusBadRequest},
		{"negative dim", "PUT", "/v1/kv/x?dim=-4", nil, http.StatusBadRequest},
		{"missing dim on create", "PUT", "/v1/kv/x", body, http.StatusBadRequest},
		{"unknown session", "GET", "/v1/kv/nope", nil, http.StatusNotFound},
		{"unknown delete", "DELETE", "/v1/kv/nope", nil, http.StatusNotFound},
		{"bad range", "GET", "/v1/kv/s?range=zz", nil, http.StatusBadRequest},
		{"inverted range", "GET", "/v1/kv/s?range=9-3", nil, http.StatusBadRequest},
		{"range past the end", "GET", "/v1/kv/s?range=10-20", nil, http.StatusRequestedRangeNotSatisfiable},
		{"bare subtree", "GET", "/v1/kv/", nil, http.StatusNotFound},
		{"nested path", "GET", "/v1/kv/a/b", nil, http.StatusNotFound},
		{"bad method", "POST", "/v1/kv/s", body, http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		if rec := doKV(h, tc.method, tc.target, tc.body); rec.Code != tc.want {
			t.Errorf("%s: %s %s -> %d, want %d (%s)", tc.name, tc.method, tc.target, rec.Code, tc.want, rec.Body.String())
		}
	}

	// 416 carries the availability window.
	rec := doKV(h, "GET", "/v1/kv/s?range=10-20", nil)
	if kvHeader(t, rec, "Total") != 6 || kvHeader(t, rec, "Evicted") != 0 {
		t.Fatalf("416 window headers: %v", rec.Header())
	}

	// 507: an append that can never fit the budget.
	tiny := New(Config{Workers: 1, KVBudgetBytes: 512, KVFlushRows: 4})
	rec = doKV(tiny.Handler(), "PUT", "/v1/kv/big?dim=64", float32sToBytes(kvRows(2, 0, 64, 64)))
	if rec.Code != http.StatusInsufficientStorage {
		t.Fatalf("over-budget PUT: %d %s", rec.Code, rec.Body.String())
	}
}

// httpEvictLog mirrors the kv OnEvict hook for HTTP-level cross-checks.
type httpEvictLog struct {
	mu      sync.Mutex
	evicted map[string]int
	full    map[string]bool
}

func (l *httpEvictLog) hook(session string, from, to int, full bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if full {
		l.full[session] = true
		return
	}
	if to > l.evicted[session] {
		l.evicted[session] = to
	}
}

// TestKVHTTP206MatchesEvictionLog: partially evicted sessions answer 206
// whose From header is exactly where the eviction log says the prefix was
// cut — the soak harness's core cross-check, pinned here deterministically.
func TestKVHTTP206MatchesEvictionLog(t *testing.T) {
	log := &httpEvictLog{evicted: make(map[string]int), full: make(map[string]bool)}
	tab := kv.New(kv.Config{
		FlushRows: 8, QP: 12, Shards: 2, BudgetBytes: 4 << 10,
		DisableAliasing: true, OnEvict: log.hook,
	})
	s := New(Config{Workers: 1, KV: tab})
	h := s.Handler()
	const dim = 16

	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("s%d", i)
		for at := 0; at < 32; at += 8 {
			rec := doKV(h, "PUT", fmt.Sprintf("/v1/kv/%s?dim=%d&at=%d", name, dim, at),
				float32sToBytes(kvRows(int64(i), at, 8, dim)))
			if rec.Code != http.StatusOK {
				t.Fatalf("%s at=%d: %d %s", name, at, rec.Code, rec.Body.String())
			}
			if r, b := tab.Resident(), tab.Budget(); r > b {
				t.Fatalf("resident %d exceeds budget %d", r, b)
			}
		}
	}

	saw206 := false
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("s%d", i)
		rec := doKV(h, "GET", "/v1/kv/"+name, nil)
		log.mu.Lock()
		evictedTo, full := log.evicted[name], log.full[name]
		log.mu.Unlock()
		switch rec.Code {
		case http.StatusOK:
			if evictedTo != 0 {
				t.Fatalf("%s: 200 but eviction log says prefix cut at %d", name, evictedTo)
			}
		case http.StatusPartialContent:
			saw206 = true
			if from := kvHeader(t, rec, "From"); from != evictedTo {
				t.Fatalf("%s: 206 From=%d, eviction log says %d", name, from, evictedTo)
			}
			if got, want := len(rec.Body.Bytes())/4/dim, 32-evictedTo; got != want {
				t.Fatalf("%s: 206 served %d rows, want %d", name, got, want)
			}
		case http.StatusNotFound:
			if !full {
				t.Fatalf("%s: 404 but eviction log has no full eviction", name)
			}
		case http.StatusRequestedRangeNotSatisfiable:
			// Fully drained but not yet removed: nothing available.
		default:
			t.Fatalf("%s: unexpected %d %s", name, rec.Code, rec.Body.String())
		}
	}
	if !saw206 {
		t.Fatal("no partially-evicted session answered 206; eviction parameters too coarse")
	}
}

// dyingBody simulates a client that hangs up mid-body: the first Read kills
// the request context (as the HTTP server does when the connection drops)
// and returns the transport error the handler's io.ReadAll would see.
type dyingBody struct{ cancel context.CancelFunc }

func (d *dyingBody) Read([]byte) (int, error) {
	d.cancel()
	return 0, errors.New("read tcp 127.0.0.1: connection reset by peer")
}

// TestBodyReadDisconnectIs499 is the regression test for the taxonomy fix:
// a body read that fails because the client hung up mid-PUT must classify as
// 499/canceled (or 504 on deadline), never as the client's 400 bad_request.
// Before the fix readBody mapped every non-oversize read failure to 400.
func TestBodyReadDisconnectIs499(t *testing.T) {
	s := New(Config{Workers: 1, KVFlushRows: 4})
	h := s.Handler()
	for _, target := range []string{"/v1/kv/sess?dim=8", "/v1/encode?rows=4&cols=4"} {
		method := "PUT"
		if target[4] == 'e' {
			method = "POST"
		}
		req := httptest.NewRequest(method, target, nil)
		ctx, cancel := context.WithCancel(req.Context())
		req = req.WithContext(ctx)
		req.Body = io.NopCloser(&dyingBody{cancel: cancel})
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != StatusClientClosedRequest {
			t.Fatalf("%s %s with mid-body disconnect: %d %s, want 499", method, target, rec.Code, rec.Body.String())
		}
		var body errorBody
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Class != "canceled" {
			t.Fatalf("%s: class %q (%v), want canceled", target, body.Class, err)
		}
	}

	// Control: a read error with a live context is still the client's fault.
	req := httptest.NewRequest("PUT", "/v1/kv/sess?dim=8", nil)
	req.Body = io.NopCloser(io.MultiReader(bytes.NewReader([]byte{1, 2}), &errReader{}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("plain body-read failure: %d, want 400", rec.Code)
	}
}

type errReader struct{}

func (errReader) Read([]byte) (int, error) { return 0, errors.New("chunked body is malformed") }
