package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
)

// newTestServer spins a Server over httptest. The returned base URL serves
// the real handler stack over real HTTP connections.
func newTestServer(t testing.TB, cfg Config) (*Server, string) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts.URL
}

// testStack builds a deterministic stack of layers tensors with values in
// [-1, 1).
func testStack(seed int64, layers, rows, cols int) []*core.Tensor {
	rng := rand.New(rand.NewSource(seed))
	stack := make([]*core.Tensor, layers)
	for l := range stack {
		t := core.NewTensor(rows, cols)
		for i := range t.Data {
			t.Data[i] = rng.Float32()*2 - 1
		}
		stack[l] = t
	}
	return stack
}

// stackBody serializes a stack as the encode endpoint's float32 LE body.
func stackBody(stack []*core.Tensor) []byte {
	var buf bytes.Buffer
	for _, t := range stack {
		buf.Write(float32sToBytes(t.Data))
	}
	return buf.Bytes()
}

// post issues a POST and returns status, body and headers.
func post(t testing.TB, url string, body []byte) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp.StatusCode, out, resp.Header
}

// TestEncodeRoundTripMatchesCore is the bit-identity gate: for every
// profile/option combination the HTTP encode must return exactly the bytes
// of a direct core.EncodeStack(...).Marshal(), and the HTTP decode must
// return exactly the float32s of a direct DecodeStack.
func TestEncodeRoundTripMatchesCore(t *testing.T) {
	_, url := newTestServer(t, Config{MaxInflight: 2})
	cases := []struct {
		name   string
		query  string
		mutate func(*core.Options)
		layers int
		rows   int
		cols   int
		qp     int
	}{
		{"h265-default", "", func(o *core.Options) {}, 1, 48, 64, 30},
		{"h264", "&profile=h264", func(o *core.Options) { o.Profile = codec.H264 }, 1, 48, 64, 30},
		{"av1", "&profile=av1", func(o *core.Options) { o.Profile = codec.AV1 }, 1, 48, 64, 30},
		{"checksum", "&checksum=1", func(o *core.Options) { o.Checksum = true }, 3, 48, 64, 28},
		{"indexed", "&index=1", func(o *core.Options) { o.Index = true }, 2, 48, 64, 28},
		{"fast-search", "&fast-search=1", func(o *core.Options) { o.FastSearch = true }, 1, 64, 64, 30},
		{"per-row", "&per-row=1", func(o *core.Options) { o.PerRowQuant = true }, 2, 48, 64, 26},
		{"rans", "&backend=rans", func(o *core.Options) { o.Backend = codec.BackendRANS }, 2, 48, 64, 28},
		{"rans-h264", "&backend=rans&profile=h264", func(o *core.Options) {
			o.Backend = codec.BackendRANS
			o.Profile = codec.H264
		}, 1, 64, 64, 30},
		{"frame-split", "&max-frame-w=32&max-frame-h=32&checksum=true", func(o *core.Options) {
			o.MaxFrameW, o.MaxFrameH = 32, 32
			o.Checksum = true
		}, 2, 96, 96, 30},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stack := testStack(int64(len(tc.name)), tc.layers, tc.rows, tc.cols)
			// Direct reference encode.
			opts := core.DefaultOptions()
			tc.mutate(&opts)
			want, err := opts.EncodeStack(stack, tc.qp)
			if err != nil {
				t.Fatal(err)
			}
			wantBytes := want.Marshal()

			// HTTP encode.
			encURL := fmt.Sprintf("%s/v1/encode?layers=%d&rows=%d&cols=%d&qp=%d%s",
				url, tc.layers, tc.rows, tc.cols, tc.qp, tc.query)
			status, got, hdr := post(t, encURL, stackBody(stack))
			if status != http.StatusOK {
				t.Fatalf("encode status %d: %s", status, got)
			}
			if !bytes.Equal(got, wantBytes) {
				t.Fatalf("HTTP encode bytes differ from core.EncodeStack().Marshal() (%d vs %d bytes)",
					len(got), len(wantBytes))
			}
			if hdr.Get("X-Llm265-Bits-Per-Value") == "" {
				t.Error("missing X-Llm265-Bits-Per-Value header")
			}

			// HTTP decode of the container must match the direct decode.
			wantDec, err := opts.DecodeStack(want)
			if err != nil {
				t.Fatal(err)
			}
			status, decBody, hdr := post(t, url+"/v1/decode", got)
			if status != http.StatusOK {
				t.Fatalf("decode status %d: %s", status, decBody)
			}
			if hdr.Get("X-Llm265-Layers") != fmt.Sprint(tc.layers) {
				t.Errorf("X-Llm265-Layers = %q, want %d", hdr.Get("X-Llm265-Layers"), tc.layers)
			}
			wantFloats := stackBody(wantDec)
			if !bytes.Equal(decBody, wantFloats) {
				t.Fatalf("HTTP decode floats differ from direct DecodeStack")
			}
		})
	}
}

// TestGoldenCorpusOverHTTP serves every golden conformance vector through
// /v1/decode and byte-compares the GPLN response against the checked-in
// .planes files — the corpus gate extended across the network boundary.
func TestGoldenCorpusOverHTTP(t *testing.T) {
	_, url := newTestServer(t, Config{MaxInflight: 2})
	goldenDir := filepath.Join("..", "codec", "testdata", "golden")
	streams, err := filepath.Glob(filepath.Join(goldenDir, "*.l265"))
	if err != nil || len(streams) == 0 {
		t.Fatalf("no golden vectors under %s (err=%v)", goldenDir, err)
	}
	for _, streamPath := range streams {
		name := strings.TrimSuffix(filepath.Base(streamPath), ".l265")
		t.Run(name, func(t *testing.T) {
			stream, err := os.ReadFile(streamPath)
			if err != nil {
				t.Fatal(err)
			}
			wantPlanes, err := os.ReadFile(filepath.Join(goldenDir, name+".planes"))
			if err != nil {
				t.Fatal(err)
			}
			status, got, _ := post(t, url+"/v1/decode", stream)
			if status != http.StatusOK {
				t.Fatalf("decode status %d: %s", status, got)
			}
			if !bytes.Equal(got, wantPlanes) {
				t.Fatalf("HTTP GPLN body differs from golden .planes (%d vs %d bytes)",
					len(got), len(wantPlanes))
			}
		})
	}
}

// TestErrorTaxonomyStatuses pins the error→status table: every damage class
// must land on its documented status with the class named in the JSON body.
func TestErrorTaxonomyStatuses(t *testing.T) {
	_, url := newTestServer(t, Config{MaxInflight: 2})

	// Build the damaged payloads from a healthy v3 codec container.
	planes := testStack(3, 2, 64, 64)
	opts := core.DefaultOptions()
	opts.Checksum = true
	enc, err := opts.EncodeStack(planes, 30)
	if err != nil {
		t.Fatal(err)
	}
	v3 := enc.Stream

	flipped := append([]byte(nil), v3...)
	flipped[len(flipped)-1] ^= 0xFF // last chunk payload byte → CRC mismatch
	truncated := v3[:len(v3)-7]     // ends inside the last payload
	garbage := []byte("L265\x02 this is not a chunk table")

	// Self-check the damage classes against the direct decoder so the HTTP
	// assertions below test the mapping, not the damage construction.
	if _, derr := codec.DecodeWorkers(flipped, 1); !errors.Is(derr, codec.ErrChecksum) {
		t.Fatalf("flipped container decodes to %v, want ErrChecksum", derr)
	}
	if _, derr := codec.DecodeWorkers(truncated, 1); !errors.Is(derr, codec.ErrTruncated) {
		t.Fatalf("truncated container decodes to %v, want ErrTruncated", derr)
	}

	cases := []struct {
		name       string
		body       []byte
		wantStatus int
		wantClass  string
	}{
		{"checksum-409", flipped, http.StatusConflict, "checksum"},
		{"truncated-400", truncated, http.StatusBadRequest, "truncated"},
		{"corrupt-422", garbage, http.StatusUnprocessableEntity, "corrupt"},
		{"unrecognized-422", []byte("not a container at all"), http.StatusUnprocessableEntity, "corrupt"},
		{"empty-400", nil, http.StatusBadRequest, "truncated"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body, _ := post(t, url+"/v1/decode", tc.body)
			if status != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %s)", status, tc.wantStatus, body)
			}
			var eb errorBody
			if err := json.Unmarshal(body, &eb); err != nil {
				t.Fatalf("error body is not JSON: %v (%s)", err, body)
			}
			if eb.Class != tc.wantClass {
				t.Errorf("class = %q, want %q", eb.Class, tc.wantClass)
			}
		})
	}

	// Method and query validation round out the table.
	resp, err := http.Get(url + "/v1/encode")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/encode = %d, want 405", resp.StatusCode)
	}
	status, _, _ := post(t, url+"/v1/encode?rows=8&cols=8&qp=999", make([]byte, 256))
	if status != http.StatusBadRequest {
		t.Errorf("qp=999 status = %d, want 400", status)
	}
	status, body, _ := post(t, url+"/v1/encode?rows=8&cols=8&qp=30&backend=bogus", make([]byte, 256))
	if status != http.StatusBadRequest {
		t.Errorf("backend=bogus status = %d, want 400", status)
	}
	if !bytes.Contains(body, []byte("backend")) {
		t.Errorf("backend=bogus error body %q does not name the parameter", body)
	}
}

// TestDecodeSniffTaxonomy pins the /v1/decode container sniff: bodies shorter
// than the 5-byte sniff window are truncation (400), wrong magic or an
// impossible kind byte is corruption (422), and indexed v3 containers route
// to the codec decoder and succeed — never a misroute, never a panic.
func TestDecodeSniffTaxonomy(t *testing.T) {
	_, url := newTestServer(t, Config{MaxInflight: 2})

	opts := core.DefaultOptions()
	opts.Index = true
	enc, err := opts.EncodeStack(testStack(9, 2, 64, 64), 30)
	if err != nil {
		t.Fatal(err)
	}
	indexed := enc.Stream
	wantPlanes, err := codec.DecodeWorkers(indexed, 1)
	if err != nil {
		t.Fatalf("indexed stream does not decode directly: %v", err)
	}
	lay, err := codec.Layout(indexed)
	if err != nil || lay.Index == nil {
		t.Fatalf("test stream carries no index (err=%v)", err)
	}

	// Damage variants: cut inside the trailer (truncation) and flip a byte in
	// the trailer body (its CRC32C must catch it).
	cutTrailer := indexed[:lay.TrailerOff+lay.TrailerLen/2]
	flipTrailer := append([]byte(nil), indexed...)
	flipTrailer[lay.TrailerOff+10] ^= 0x01
	if _, derr := codec.DecodeWorkers(cutTrailer, 1); !errors.Is(derr, codec.ErrTruncated) {
		t.Fatalf("cut trailer decodes to %v, want ErrTruncated", derr)
	}
	if _, derr := codec.DecodeWorkers(flipTrailer, 1); !errors.Is(derr, codec.ErrChecksum) {
		t.Fatalf("flipped trailer decodes to %v, want ErrChecksum", derr)
	}

	cases := []struct {
		name       string
		query      string
		body       []byte
		wantStatus int
		wantClass  string
	}{
		{"empty", "", nil, http.StatusBadRequest, "truncated"},
		{"one-byte", "", []byte("L"), http.StatusBadRequest, "truncated"},
		{"magic-only", "", []byte("L265"), http.StatusBadRequest, "truncated"},
		{"core-magic-only", "", []byte("L265T"), http.StatusBadRequest, "truncated"},
		{"wrong-magic", "", []byte("X265\x03 payload"), http.StatusUnprocessableEntity, "corrupt"},
		{"bad-version", "", []byte("L265\x07 payload"), http.StatusUnprocessableEntity, "corrupt"},
		{"indexed-ok", "", indexed, http.StatusOK, ""},
		{"indexed-partial-ok", "?partial=1", indexed, http.StatusOK, ""},
		{"indexed-cut-trailer", "", cutTrailer, http.StatusBadRequest, "truncated"},
		{"indexed-flipped-trailer", "", flipTrailer, http.StatusConflict, "checksum"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body, _ := post(t, url+"/v1/decode"+tc.query, tc.body)
			if status != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %.120s)", status, tc.wantStatus, body)
			}
			if tc.wantStatus == http.StatusOK {
				if !bytes.Equal(body, marshalPlanes(wantPlanes)) {
					t.Fatal("indexed decode body differs from direct DecodeWorkers")
				}
				return
			}
			var eb errorBody
			if err := json.Unmarshal(body, &eb); err != nil {
				t.Fatalf("error body is not JSON: %v (%s)", err, body)
			}
			if eb.Class != tc.wantClass {
				t.Errorf("class = %q, want %q", eb.Class, tc.wantClass)
			}
		})
	}

	// A damaged-payload indexed stream under ?partial=1 still recovers: the
	// index never makes partial decode worse.
	flipPayload := append([]byte(nil), indexed...)
	flipPayload[lay.TrailerOff-1] ^= 0xFF
	status, _, hdr := post(t, url+"/v1/decode?partial=1", flipPayload)
	if status != http.StatusPartialContent {
		t.Fatalf("damaged indexed partial = %d, want 206", status)
	}
	if hdr.Get("X-Llm265-Failed-Chunks") == "" {
		t.Error("missing loss accounting on indexed 206")
	}
}

// TestPartialDecodeOverHTTP: a damaged v3 stream with ?partial=1 answers
// 206 with the loss accounting headers and placeholder planes, both for
// codec-level and core containers.
func TestPartialDecodeOverHTTP(t *testing.T) {
	_, url := newTestServer(t, Config{MaxInflight: 2})
	stack := testStack(5, 3, 64, 64)
	opts := core.DefaultOptions()
	opts.Checksum = true
	enc, err := opts.EncodeStack(stack, 30)
	if err != nil {
		t.Fatal(err)
	}
	damage := func(stream []byte) []byte {
		d := append([]byte(nil), stream...)
		d[len(d)-1] ^= 0xFF
		return d
	}

	// Codec-level container → GPLN with a placeholder for the lost plane.
	status, body, hdr := post(t, url+"/v1/decode?partial=1", damage(enc.Stream))
	if status != http.StatusPartialContent {
		t.Fatalf("codec partial status = %d, want 206 (%s)", status, body)
	}
	if hdr.Get("X-Llm265-Failed-Chunks") == "" || hdr.Get("X-Llm265-Recovered-Planes") == "" {
		t.Error("missing loss-accounting headers on 206")
	}
	if !bytes.HasPrefix(body, []byte("GPLN")) {
		t.Error("codec partial body is not GPLN")
	}

	// Core container → float32 body with zero-filled damage and 206.
	encDamaged := *enc
	encDamaged.Stream = damage(enc.Stream)
	status, body, hdr = post(t, url+"/v1/decode?partial=1", encDamaged.Marshal())
	if status != http.StatusPartialContent {
		t.Fatalf("core partial status = %d, want 206 (%s)", status, body)
	}
	if got, want := len(body), 4*3*64*64; got != want {
		t.Errorf("core partial body %d bytes, want %d", got, want)
	}
	if hdr.Get("X-Llm265-Failed-Chunks") == "" {
		t.Error("missing X-Llm265-Failed-Chunks on core 206")
	}

	// Same bytes without partial=1 must fail with the checksum status.
	status, _, _ = post(t, url+"/v1/decode", encDamaged.Marshal())
	if status != http.StatusConflict {
		t.Errorf("non-partial damaged decode = %d, want 409", status)
	}
}

// TestDeadlineExceededOverHTTP: a request whose ?deadline_ms budget cannot
// cover the encode must answer 504 promptly — the cooperative-cancellation
// path end to end.
func TestDeadlineExceededOverHTTP(t *testing.T) {
	_, url := newTestServer(t, Config{MaxInflight: 2})
	stack := testStack(7, 8, 256, 256) // big enough to blow a 1ms budget
	encURL := url + "/v1/encode?layers=8&rows=256&cols=256&qp=30&deadline_ms=1"
	start := time.Now()
	status, body, _ := post(t, encURL, stackBody(stack))
	elapsed := time.Since(start)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (%s)", status, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Class != "deadline_exceeded" {
		t.Errorf("error class = %q (err %v), want deadline_exceeded", eb.Class, err)
	}
	// The 1ms budget plus the 100ms promptness contract plus HTTP overhead:
	// anything beyond a second means cancellation is not propagating.
	if elapsed > time.Second {
		t.Errorf("deadline-exceeded request took %v", elapsed)
	}
}

// TestBackpressure429: with the single inflight slot held and the queue
// full, the next request bounces with 429 + Retry-After instead of queuing
// without bound.
func TestBackpressure429(t *testing.T) {
	s, url := newTestServer(t, Config{MaxInflight: 1, MaxQueue: 1})
	// Occupy the one inflight slot directly (white-box: this is exactly the
	// state an admitted long-running encode holds).
	s.adm.enter()
	s.adm.sem <- struct{}{}
	defer func() {
		<-s.adm.sem
		s.adm.exit()
	}()

	// Fill the one queue slot with a real queued request.
	queuedDone := make(chan int, 1)
	go func() {
		status, _, _ := post(t, url+"/v1/decode", []byte("L265\x02 whatever"))
		queuedDone <- status
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Queued() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("queued request never registered")
		}
		time.Sleep(time.Millisecond)
	}

	// The next request must bounce.
	status, body, hdr := post(t, url+"/v1/decode", []byte("L265\x02 whatever"))
	if status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (%s)", status, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	// Releasing the slot lets the queued request through (to its 4xx decode
	// error, which proves it executed).
	<-s.adm.sem
	s.adm.exit()
	select {
	case st := <-queuedDone:
		if st != http.StatusUnprocessableEntity {
			t.Errorf("queued request finished with %d, want 422", st)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued request never completed after slot release")
	}
	// Re-acquire for the deferred release (keep the defer balanced).
	s.adm.enter()
	s.adm.sem <- struct{}{}
}

// TestGracefulDrain: Drain lets the inflight encode finish, rejects new
// work with 503, flips /healthz to draining, and returns once idle.
func TestGracefulDrain(t *testing.T) {
	s, url := newTestServer(t, Config{MaxInflight: 2})
	stack := testStack(11, 6, 256, 256)

	// Launch a real encode and wait for it to be admitted.
	type result struct {
		status int
		body   []byte
	}
	inflight := make(chan result, 1)
	go func() {
		st, body, _ := post(t, fmt.Sprintf("%s/v1/encode?layers=6&rows=256&cols=256&qp=30", url), stackBody(stack))
		inflight <- result{st, body}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for s.Inflight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("encode was never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	drainErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drainErr <- s.Drain(ctx)
	}()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}

	// New work is rejected while draining.
	status, body, _ := post(t, url+"/v1/decode", []byte("L265\x02 x"))
	if status != http.StatusServiceUnavailable {
		t.Errorf("request during drain = %d, want 503 (%s)", status, body)
	}
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain = %d, want 503 (%s)", resp.StatusCode, hb)
	}

	// The inflight encode still completes successfully.
	res := <-inflight
	if res.status != http.StatusOK {
		t.Fatalf("inflight encode finished with %d during drain: %s", res.status, res.body)
	}
	wg.Wait()
	if err := <-drainErr; err != nil {
		t.Fatalf("Drain returned %v", err)
	}
}

// TestDrainAdmitRace: admission registration must be safely concurrent with
// Drain. The original implementation tracked inflight requests with a
// sync.WaitGroup whose counter could step 0→1 (admit) concurrently with a
// Wait (drain) — a pairing the WaitGroup contract forbids and the race
// detector flags under the right interleaving. This hammers exactly that
// interleaving directly on the admission scheduler; meaningful under -race.
func TestDrainAdmitRace(t *testing.T) {
	for round := 0; round < 25; round++ {
		a := newAdmission(4, 8)
		// Hold one slot so the drain is forced to block on a live request
		// rather than observing an idle scheduler and returning immediately.
		hold, rej := a.admit(context.Background())
		if rej != nil {
			t.Fatalf("round %d: initial admit rejected: %s", round, rej.reason)
		}
		var churn sync.WaitGroup
		for g := 0; g < 3; g++ {
			churn.Add(1)
			go func() {
				defer churn.Done()
				for {
					release, rej := a.admit(context.Background())
					if rej != nil {
						return // draining
					}
					release()
				}
			}()
		}
		drained := make(chan error, 1)
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			drained <- (&Server{adm: a}).Drain(ctx)
		}()
		for !a.isDraining() {
			time.Sleep(10 * time.Microsecond)
		}
		// Release the held slot while the churners are still registering:
		// the drain now completes concurrently with late registrations.
		hold()
		if err := <-drained; err != nil {
			t.Fatalf("round %d: drain: %v", round, err)
		}
		churn.Wait()
	}
}

// TestHealthzAndMetricsz: the operational endpoints report admission state
// and the serve.* metric taxonomy.
func TestHealthzAndMetricsz(t *testing.T) {
	_, url := newTestServer(t, Config{MaxInflight: 2})

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz = %d %v", resp.StatusCode, health)
	}

	// One encode, then the metrics snapshot must show it.
	stack := testStack(13, 1, 32, 32)
	status, _, _ := post(t, url+"/v1/encode?rows=32&cols=32&qp=30", stackBody(stack))
	if status != http.StatusOK {
		t.Fatalf("encode status %d", status)
	}
	resp, err = http.Get(url + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters   map[string]int64          `json:"counters"`
		Histograms map[string]map[string]any `json:"histograms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Counters["serve.encode.requests"] < 1 {
		t.Errorf("serve.encode.requests = %d, want >= 1", snap.Counters["serve.encode.requests"])
	}
	if snap.Counters["serve.responses.2xx"] < 1 {
		t.Errorf("serve.responses.2xx = %d, want >= 1", snap.Counters["serve.responses.2xx"])
	}
	if _, ok := snap.Histograms["serve.encode.latency_ns"]; !ok {
		t.Error("metricsz missing serve.encode.latency_ns histogram")
	}
	// The shared registry also carries the codec layer's metrics.
	if snap.Counters["codec.encode.calls"] < 1 {
		t.Errorf("codec.encode.calls = %d, want >= 1 (shared registry)", snap.Counters["codec.encode.calls"])
	}
}

// TestBodyTooLarge413: bodies beyond the configured cap bounce with 413.
func TestBodyTooLarge413(t *testing.T) {
	_, url := newTestServer(t, Config{MaxInflight: 1, MaxBodyBytes: 1024})
	status, body, _ := post(t, url+"/v1/decode", make([]byte, 4096))
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (%s)", status, body)
	}
}
