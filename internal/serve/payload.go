// Wire payload formats of the service. Two body encodings exist:
//
//   - Tensor bodies (encode request, core-container decode response): raw
//     float32 little-endian values, row-major, layers concatenated. The
//     geometry travels in query parameters (request) or X-Llm265-* response
//     headers, keeping the body a zero-framing memcpy of the caller's
//     tensor.
//   - Plane bodies (codec-container decode response): the GPLN format used
//     by the golden conformance corpus — "GPLN" | u32 count | count × (u32
//     w, u32 h, w*h pixel bytes), big-endian lengths. Serving the corpus
//     vectors through HTTP therefore byte-compares directly against the
//     checked-in .planes files.
package serve

import (
	"bytes"
	"encoding/binary"
	"math"

	"repro/internal/frame"
)

// float32sToBytes serializes vals as little-endian float32s.
func float32sToBytes(vals []float32) []byte {
	out := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(v))
	}
	return out
}

// bytesToFloat32s parses a little-endian float32 body. The caller has
// already validated len(data)%4 == 0.
func bytesToFloat32s(data []byte) []float32 {
	vals := make([]float32, len(data)/4)
	for i := range vals {
		vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[4*i:]))
	}
	return vals
}

// marshalPlanes serializes decoded planes in the GPLN golden format. Planes
// lost to a partial decode are encoded as 0×0 entries (zero w, zero h, no
// pixels) so the container-order indexing survives the loss.
func marshalPlanes(planes []*frame.Plane) []byte {
	var buf bytes.Buffer
	buf.WriteString("GPLN")
	binary.Write(&buf, binary.BigEndian, uint32(len(planes)))
	for _, p := range planes {
		if p == nil {
			binary.Write(&buf, binary.BigEndian, uint32(0))
			binary.Write(&buf, binary.BigEndian, uint32(0))
			continue
		}
		binary.Write(&buf, binary.BigEndian, uint32(p.W))
		binary.Write(&buf, binary.BigEndian, uint32(p.H))
		buf.Write(p.Pix)
	}
	return buf.Bytes()
}
