package serve

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"io"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/frame"
)

// The concurrency soak: 64 goroutine clients hammer one server with a mix
// of encodes, decodes (both container kinds), damaged payloads and
// undersized deadlines, checksumming every successful response against a
// precomputed reference. Run under -race this is the data-race gate for the
// admission scheduler, the shared worker pool and the shared obs registry.

// soakScenario is one precomputed request with its acceptance criteria.
type soakScenario struct {
	name string
	url  string // path + query, appended to the base URL
	body []byte
	// wantSHA is the sha256 of the only acceptable 200 body.
	wantSHA [32]byte
	// okStatuses are the acceptable response statuses. 429 is always
	// acceptable: the bounded queue is allowed to bounce under load.
	okStatuses map[int]bool
}

func buildSoakScenarios(t testing.TB) []soakScenario {
	t.Helper()
	mk := func(name, url string, body []byte, want []byte, statuses ...int) soakScenario {
		sc := soakScenario{name: name, url: url, body: body, okStatuses: map[int]bool{}}
		if want != nil {
			sc.wantSHA = sha256.Sum256(want)
			sc.okStatuses[http.StatusOK] = true
		}
		for _, s := range statuses {
			sc.okStatuses[s] = true
		}
		sc.okStatuses[http.StatusTooManyRequests] = true
		return sc
	}

	// Encode scenario: bytes must equal the direct core encode.
	stack := testStack(101, 2, 32, 32)
	opts := core.DefaultOptions()
	ref, err := opts.EncodeStack(stack, 30)
	if err != nil {
		t.Fatal(err)
	}
	refBytes := ref.Marshal()

	// Checksummed encode scenario.
	optsV3 := core.DefaultOptions()
	optsV3.Checksum = true
	refV3, err := optsV3.EncodeStack(stack, 30)
	if err != nil {
		t.Fatal(err)
	}

	// Decode scenarios: core container → floats; codec container → GPLN.
	dec, err := opts.DecodeStack(ref)
	if err != nil {
		t.Fatal(err)
	}
	decBody := stackBody(dec)

	// Damaged payloads.
	flipped := append([]byte(nil), refV3.Stream...)
	flipped[len(flipped)-1] ^= 0xFF
	truncated := refBytes[:len(refBytes)/2]

	return []soakScenario{
		mk("encode", "/v1/encode?layers=2&rows=32&cols=32&qp=30", stackBody(stack), refBytes),
		mk("encode-v3", "/v1/encode?layers=2&rows=32&cols=32&qp=30&checksum=1", stackBody(stack), refV3.Marshal()),
		mk("decode-core", "/v1/decode", refBytes, decBody),
		mk("decode-codec-v3", "/v1/decode", refV3.Stream, marshalPlanes(mustPlanes(t, refV3.Stream))),
		mk("decode-checksum-damage", "/v1/decode", flipped, nil, http.StatusConflict),
		mk("decode-truncated", "/v1/decode", truncated, nil, http.StatusBadRequest, http.StatusUnprocessableEntity),
		mk("decode-garbage", "/v1/decode", []byte("L265\x03 garbage chunk table follows here"), nil,
			http.StatusUnprocessableEntity, http.StatusBadRequest, http.StatusConflict),
		// A 1ms deadline may or may not cover a 48×48 encode depending on
		// load: both outcomes are legal, wrong bytes are not.
		mk("encode-tight-deadline", "/v1/encode?layers=2&rows=32&cols=32&qp=30&deadline_ms=1",
			stackBody(stack), refBytes, http.StatusGatewayTimeout),
	}
}

// mustPlanes decodes a codec container directly for reference GPLN bytes.
func mustPlanes(t testing.TB, stream []byte) []*frame.Plane {
	t.Helper()
	planes, err := codec.DecodeWorkers(stream, 1)
	if err != nil {
		t.Fatal(err)
	}
	return planes
}

// readAllAndClose drains and closes a response body.
func readAllAndClose(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

func TestSoak64Clients(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	scenarios := buildSoakScenarios(t)
	_, url := newTestServer(t, Config{MaxInflight: 8, MaxQueue: 64, Workers: 1})

	const clients = 64
	iters := 8
	var served, bounced atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				sc := scenarios[(c+i)%len(scenarios)]
				resp, err := http.Post(url+sc.url, "application/octet-stream", bytes.NewReader(sc.body))
				if err != nil {
					errCh <- fmt.Errorf("client %d %s: %v", c, sc.name, err)
					return
				}
				body, err := readAllAndClose(resp)
				if err != nil {
					errCh <- fmt.Errorf("client %d %s: reading body: %v", c, sc.name, err)
					return
				}
				if !sc.okStatuses[resp.StatusCode] {
					errCh <- fmt.Errorf("client %d %s: status %d (%.120s)", c, sc.name, resp.StatusCode, body)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
					if got := sha256.Sum256(body); got != sc.wantSHA {
						errCh <- fmt.Errorf("client %d %s: 200 body checksum mismatch (%d bytes)", c, sc.name, len(body))
						return
					}
					served.Add(1)
				case http.StatusTooManyRequests:
					bounced.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	t.Logf("soak: %d verified 200s, %d backpressure bounces across %d requests",
		served.Load(), bounced.Load(), clients*iters)
	if served.Load() == 0 {
		t.Error("soak never verified a single successful response")
	}
}
