package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"repro/internal/core"
)

// knownStatuses is the closed set of statuses the service is allowed to
// emit. The fuzz target fails on anything else: an unmapped error leaked
// through the taxonomy (http.Error default 500s are exactly the bug class
// this hunts).
var knownStatuses = map[int]bool{
	http.StatusOK:               true,
	http.StatusNoContent:        true, // kv DELETE
	http.StatusPartialContent:   true,
	http.StatusMovedPermanently: true, // ServeMux path canonicalization

	http.StatusBadRequest:                   true,
	http.StatusNotFound:                     true, // unknown path (mux), kv session
	http.StatusMethodNotAllowed:             true,
	http.StatusConflict:                     true,
	http.StatusRequestEntityTooLarge:        true,
	http.StatusRequestedRangeNotSatisfiable: true, // kv range past the window
	http.StatusUnprocessableEntity:          true,
	http.StatusTooManyRequests:              true,
	StatusClientClosedRequest:               true,
	http.StatusServiceUnavailable:           true,
	http.StatusGatewayTimeout:               true,
	http.StatusInsufficientStorage:          true, // kv budget exhausted
}

// FuzzServeRequest throws arbitrary method/path/query/body combinations at
// the handler stack in-process (no network): the service must never panic
// (the harness fails the run on panic — a panicking handler would take the
// whole goroutine down, there is no net/http recovery between us and the
// mux) and must answer every request with a status from the documented set.
//
// Seeds cover both container kinds, a valid encode, damaged streams and
// hostile query strings, so the fuzzer starts inside every handler branch.
func FuzzServeRequest(f *testing.F) {
	// Build valid bodies for the seeds.
	stack := testStack(201, 1, 32, 32)
	opts := core.DefaultOptions()
	opts.Checksum = true
	enc, err := opts.EncodeStack(stack, 30)
	if err != nil {
		f.Fatal(err)
	}
	container := enc.Marshal()
	flipped := append([]byte(nil), container...)
	flipped[len(flipped)-1] ^= 0xFF

	f.Add("POST", "v1/encode", "rows=32&cols=32&qp=30", stackBody(stack))
	f.Add("POST", "v1/encode", "rows=32&cols=32&qp=30&checksum=1&fast-search=1", stackBody(stack))
	f.Add("POST", "v1/encode", "rows=32&cols=32&qp=30&backend=rans", stackBody(stack))
	f.Add("POST", "v1/encode", "rows=32&cols=32&qp=30&backend=backend(7)", stackBody(stack))
	f.Add("POST", "v1/decode", "", container)
	f.Add("POST", "v1/decode", "partial=1", flipped)
	f.Add("POST", "v1/decode", "", enc.Stream)
	f.Add("POST", "v1/decode", "", container[:len(container)/2])
	f.Add("GET", "healthz", "", []byte(nil))
	f.Add("GET", "metricsz", "", []byte(nil))
	f.Add("PUT", "v1/encode", "rows=-1&cols=99999999&qp=banana", []byte("x"))
	f.Add("POST", "v1/encode", "rows=1&cols=1&deadline_ms=0", []byte{0, 0, 0, 0})
	f.Add("POST", "nope", "", []byte("L265"))

	// One server for the whole run: a tight body cap and geometry caps keep
	// each invented input cheap, and a server deadline bounds any encode the
	// fuzzer manages to make expensive.
	s := New(Config{MaxInflight: 2, MaxBodyBytes: 1 << 16, Workers: 1})
	h := s.Handler()

	f.Fuzz(func(t *testing.T, method, path, query string, body []byte) {
		if len(method) == 0 || len(method) > 8 {
			method = "POST"
		}
		for _, c := range method {
			if c < 'A' || c > 'Z' {
				method = "POST"
				break
			}
		}
		target := sanitizeTarget("/" + path)
		if query != "" {
			target += "?" + sanitizeTarget(query)
		}
		if _, err := url.ParseRequestURI(target); err != nil {
			// A real listener rejects unparseable request lines with 400
			// before routing; the handler never sees them, so neither
			// should the fuzz harness (NewRequest would panic).
			t.Skip()
		}
		req := httptest.NewRequest(method, "http://fuzz.local"+target, bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if !knownStatuses[rec.Code] {
			t.Fatalf("%s %s -> unmapped status %d (%.200s)", method, target, rec.Code, rec.Body.String())
		}
	})
}

// sanitizeTarget keeps the fuzzer's invented path/query a parseable request
// target: httptest.NewRequest panics on control characters or spaces, which
// would fail the run for reasons that are not service bugs.
func sanitizeTarget(target string) string {
	out := make([]byte, 0, len(target))
	for i := 0; i < len(target); i++ {
		c := target[i]
		if c <= ' ' || c >= 0x7f || c == '#' {
			out = append(out, '_')
			continue
		}
		out = append(out, c)
	}
	return string(out)
}
