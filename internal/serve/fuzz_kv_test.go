package serve

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/kv"
)

// FuzzKVRequest throws arbitrary method/session/query/body combinations at
// the kv endpoints. Three invariants:
//
//  1. The handler stack never panics.
//  2. Every answer uses a status from the closed knownStatuses set.
//  3. A fuzzed request can never corrupt a previously committed prefix: a
//     reference session ("golden") holds committed rows whose bytes are
//     captured once, and after every fuzzed request the same range must
//     read back byte-identical — unless the fuzzed request legitimately
//     removed it (DELETE on the session, or budget eviction), in which
//     case the reference is rebuilt and, being deterministic, re-captures
//     the same bytes.
func FuzzKVRequest(f *testing.F) {
	const dim, rows = 8, 8
	// The eviction hook makes invariant 3 airtight: a vanished or narrowed
	// golden session is legal only when the table itself logged an eviction
	// of it (budget pressure from fuzzed appends) or the fuzzer deleted it.
	var goldenEvicted atomic.Bool
	tab := kv.New(kv.Config{
		FlushRows: 4, QP: 12, BudgetBytes: 8 << 20, Workers: 1,
		OnEvict: func(session string, _, _ int, _ bool) {
			if session == "golden" {
				goldenEvicted.Store(true)
			}
		},
	})
	s := New(Config{MaxInflight: 2, MaxBodyBytes: 1 << 14, Workers: 1, KV: tab})
	h := s.Handler()
	goldenRows := kvRows(77, 0, rows, dim)
	var want []byte // captured bytes of golden rows [0, rows)

	ensureGolden := func(t *testing.T) bool {
		if _, err := s.KV().Stat("golden"); errors.Is(err, kv.ErrNotFound) {
			want = nil
			if _, err := s.KV().Append(context.Background(), "golden", dim, 0, goldenRows); err != nil {
				return false
			}
		}
		if want == nil {
			res, err := s.KV().Read(context.Background(), "golden", 0, rows)
			if err != nil {
				// Partially evicted: drop and rebuild next iteration.
				_ = s.KV().Delete("golden")
				return false
			}
			want = float32sToBytes(res.Vals)
		}
		return true
	}

	valid := float32sToBytes(kvRows(5, 0, 8, dim))
	f.Add("PUT", "sess", "dim=8&at=0", valid)
	f.Add("PUT", "sess", "dim=8", valid[:4])
	f.Add("PUT", "golden", "at=0", valid)
	f.Add("PUT", "golden", "dim=16", valid)
	f.Add("PUT", "x", "dim=100000&at=-3", valid)
	f.Add("GET", "sess", "range=0-8", []byte(nil))
	f.Add("GET", "golden", "range=2-6", []byte(nil))
	f.Add("GET", "golden", "range=99-", []byte(nil))
	f.Add("GET", "nope", "range=banana", []byte(nil))
	f.Add("DELETE", "sess", "", []byte(nil))
	f.Add("DELETE", "golden", "", []byte(nil))
	f.Add("POST", "sess", "", valid)
	f.Add("PUT", "sess", "dim=8&at=0&deadline_ms=0", valid)
	f.Add("PUT", "", "", []byte(nil))

	f.Fuzz(func(t *testing.T, method, session, query string, body []byte) {
		if len(method) == 0 || len(method) > 8 {
			method = "PUT"
		}
		for _, c := range method {
			if c < 'A' || c > 'Z' {
				method = "PUT"
				break
			}
		}
		target := "/v1/kv/" + sanitizeTarget(session)
		if query != "" {
			target += "?" + sanitizeTarget(query)
		}
		if _, err := url.ParseRequestURI(target); err != nil {
			t.Skip()
		}
		if !ensureGolden(t) {
			t.Skip()
		}

		req := httptest.NewRequest(method, "http://fuzz.local"+target, bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if !knownStatuses[rec.Code] {
			t.Fatalf("%s %s -> unmapped status %d (%.200s)", method, target, rec.Code, rec.Body.String())
		}

		// The committed-prefix invariant.
		check := httptest.NewRequest("GET", "http://fuzz.local/v1/kv/golden?range=0-8", nil)
		checkRec := httptest.NewRecorder()
		h.ServeHTTP(checkRec, check)
		switch checkRec.Code {
		case http.StatusOK:
			if !bytes.Equal(checkRec.Body.Bytes(), want) {
				t.Fatalf("%s %s corrupted the committed prefix of an unrelated session", method, target)
			}
		case http.StatusNotFound:
			// Legal only if the fuzzed request deleted the session or the
			// table logged a budget eviction of it.
			if !(method == "DELETE" && strings.Contains(target, "golden")) && !goldenEvicted.Load() {
				t.Fatalf("%s %s made session golden vanish", method, target)
			}
			want = nil
		case http.StatusPartialContent, http.StatusRequestedRangeNotSatisfiable:
			// Legal only under logged budget eviction; rebuild next iteration.
			if !goldenEvicted.Load() {
				t.Fatalf("%s %s narrowed a committed prefix without eviction", method, target)
			}
			_ = s.KV().Delete("golden")
			want = nil
		default:
			t.Fatalf("golden re-read -> %d (%.200s)", checkRec.Code, checkRec.Body.String())
		}
	})
}
