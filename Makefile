# Build/verify entry points for the llm265 reproduction.
#
# `make ci` is the canonical verify step: it builds everything, vets, runs
# the test suite (which includes the exhaustive corruption sweeps and the
# fuzz targets' seed corpora), repeats the suite under the race detector —
# mandatory since the encode/decode engine fans plane chunks out across a
# goroutine worker pool (internal/codec/engine.go) — and finishes with a
# short coverage-guided fuzz pass over the decode entry points.

GO ?= go

# Per-target time budget for the fuzz smoke pass.
FUZZTIME ?= 10s

.PHONY: all build test vet race race-touched ci bench bench-guard bench-baseline bench-micro bench-parallel fuzz-smoke serve-test proxy-test store-test kv-test train-test

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector run over the full tree; catches any data race in the
# parallel engine's worker pools and in the metrics registry.
race:
	$(GO) test -race ./...

# Fast race run over just the concurrency-bearing packages and the kernels
# they call from every worker: the parallel engine, the tensor-stack layer
# that drives it, the obs registry whose handles are hammered from every
# worker, and the intra/dct kernels that now execute inside pooled
# scratch-arena workers (DESIGN.md §11).
race-touched:
	$(GO) test -race ./internal/codec/ ./internal/core/ ./internal/obs/ ./internal/intra/ ./internal/dct/ ./internal/serve/ ./internal/kv/

# The serve harness under the race detector: the integration suite, the
# error-taxonomy table, the deadline/backpressure/drain tests and the
# 64-client soak all run with -race so the admission scheduler, the shared
# worker pool and the shared obs registry are exercised concurrently on
# every CI pass (DESIGN.md §12).
serve-test:
	$(GO) test -race ./internal/serve/

# The fleet harness under the race detector: the consistent-hash equivalence
# matrix, the deterministic fault-injection sweeps ({latency, reset,
# truncation, 500, 503-drain} × {encode, decode}), breaker/prober unit
# tests, and the subprocess soak that SIGKILLs one of three real `llm265
# serve` backends mid-traffic and requires it to rejoin on its own with
# zero corrupt responses (DESIGN.md §14).
proxy-test:
	$(GO) test -race ./internal/proxy/ ./internal/faultinject/

# The content-addressed store under the race detector: pack/fetch round-trip
# and stitch validation, cross-checkpoint dedupe, manifest tamper rejection,
# and the Model LRU (budget bound, hit/miss/eviction accounting) hammered
# from concurrent goroutines (DESIGN.md §15). The packed-inference test in
# internal/llm rides along because it is the end-to-end consumer of the LRU.
store-test:
	$(GO) test -race ./internal/store/ ./internal/llm/

# The KV-cache tier under the race detector: flush-counter and aliasing unit
# tests, the schedule-invariance and aliased-twin property matrices (both
# entropy backends × worker counts), the HTTP handler taxonomy, and the
# full-scale soak — KV_SOAK=1 raises it to ≥2,000 concurrent sessions of
# interleaved append/read/expire churn under a tight byte budget, asserting
# zero corrupt reads, resident≤budget at every sample, 206 windows
# consistent with the eviction log, and a leak-free drain (DESIGN.md §16).
kv-test:
	KV_SOAK=1 $(GO) test -race ./internal/kv/ -timeout 30m

# The concurrent ring-allreduce under the race detector: the determinism
# property matrix (uncompressed concurrent ≡ bit-identical sequential;
# compressed byte-deterministic across worker counts and schedule seeds for
# both entropy backends), the error-feedback and wire-codec unit tests, and
# the chaos soak — TRAIN_SOAK=1 raises the ring to ≥96 workers of randomized
# scheduling with mid-run cancellation, asserting bit-exact reductions,
# context-clean unwinds and a leak-free goroutine drain (DESIGN.md §17).
train-test:
	TRAIN_SOAK=1 $(GO) test -race ./internal/allreduce/ ./internal/train/ -timeout 30m

ci: build vet test serve-test proxy-test store-test kv-test train-test race fuzz-smoke bench-guard

# Coverage-guided fuzzing of every decode entry point, FUZZTIME per target.
# Each target is seeded from valid round-trip containers, so the fuzzer
# starts at deep coverage; any input that panics or produces an untyped
# error is minimized and written to testdata/fuzz/ for replay by `go test`.
fuzz-smoke:
	$(GO) test ./internal/codec/ -run '^$$' -fuzz FuzzDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core/ -run '^$$' -fuzz FuzzDecodeStack -fuzztime $(FUZZTIME)
	$(GO) test ./internal/entropy/ -run '^$$' -fuzz FuzzEntropy -fuzztime $(FUZZTIME)
	$(GO) test ./internal/serve/ -run '^$$' -fuzz FuzzServeRequest -fuzztime $(FUZZTIME)
	$(GO) test ./internal/serve/ -run '^$$' -fuzz FuzzKVRequest -fuzztime $(FUZZTIME)
	$(GO) test ./internal/allreduce/ -run '^$$' -fuzz FuzzAllreduceSegment -fuzztime $(FUZZTIME)

# The instrumented end-to-end benchmark: llm265 bench encodes+decodes a
# deterministic synthetic stack with full metrics and writes a
# BENCH_parallel.json report (throughput, pool utilization, stage and bit
# breakdowns, allocs/op and bytes/op columns, full snapshot). See DESIGN.md
# §10 and §11.
bench:
	$(GO) run ./cmd/llm265 bench -layers 8 -rows 512 -cols 512 -qp 30 -out BENCH_parallel.json

# Benchmark regression guard: rerun the checked-in baseline's exact workload
# and compare. Quality (bits/value, MSE) and allocation bands are always
# enforced; throughput bands are enforced only on multi-core machines (on
# one CPU the wall clock measures the container, not the code — the guard
# prints them as advisory warnings instead). Exit code 6 means regression.
bench-guard:
	$(GO) run ./cmd/llm265 bench -baseline BENCH_baseline.json -out /dev/null

# Regenerate the bench-guard baseline. Run on a quiet machine and commit the
# result; keep the geometry small enough for CI to repeat cheaply.
bench-baseline:
	$(GO) run ./cmd/llm265 bench -layers 4 -rows 256 -cols 256 -qp 30 -workers 4 -serve -proxy -store -kv -train -name baseline -out BENCH_baseline.json

# One pass over every paper-artifact micro-benchmark (testing.B).
bench-micro:
	$(GO) test -bench=. -benchtime=1x

# Serial vs parallel engine throughput on a multi-layer stack.
bench-parallel:
	$(GO) test -bench='(Encode|Decode)Stack(Serial|Parallel)' -benchtime=3x .
