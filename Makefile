# Build/verify entry points for the llm265 reproduction.
#
# `make ci` is the canonical verify step: it builds everything, vets, runs
# the test suite (which includes the exhaustive corruption sweeps and the
# fuzz targets' seed corpora), repeats the suite under the race detector —
# mandatory since the encode/decode engine fans plane chunks out across a
# goroutine worker pool (internal/codec/engine.go) — and finishes with a
# short coverage-guided fuzz pass over the decode entry points.

GO ?= go

# Per-target time budget for the fuzz smoke pass.
FUZZTIME ?= 10s

.PHONY: all build test vet race race-touched ci bench bench-micro bench-parallel fuzz-smoke

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector run over the full tree; catches any data race in the
# parallel engine's worker pools and in the metrics registry.
race:
	$(GO) test -race ./...

# Fast race run over just the concurrency-bearing packages: the parallel
# engine, the tensor-stack layer that drives it, and the obs registry whose
# handles are hammered from every worker.
race-touched:
	$(GO) test -race ./internal/codec/ ./internal/core/ ./internal/obs/

# Coverage-guided fuzzing of every decode entry point, FUZZTIME per target.
# Each target is seeded from valid round-trip containers, so the fuzzer
# starts at deep coverage; any input that panics or produces an untyped
# error is minimized and written to testdata/fuzz/ for replay by `go test`.
fuzz-smoke:
	$(GO) test ./internal/codec/ -run '^$$' -fuzz FuzzDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core/ -run '^$$' -fuzz FuzzDecodeStack -fuzztime $(FUZZTIME)
	$(GO) test ./internal/entropy/ -run '^$$' -fuzz FuzzEntropy -fuzztime $(FUZZTIME)

ci: build vet test race fuzz-smoke

# The instrumented end-to-end benchmark: llm265 bench encodes+decodes a
# deterministic synthetic stack with full metrics and writes a
# BENCH_parallel.json report (throughput, pool utilization, stage and bit
# breakdowns, full snapshot). See DESIGN.md §10.
bench:
	$(GO) run ./cmd/llm265 bench -layers 8 -rows 512 -cols 512 -qp 30 -out BENCH_parallel.json

# One pass over every paper-artifact micro-benchmark (testing.B).
bench-micro:
	$(GO) test -bench=. -benchtime=1x

# Serial vs parallel engine throughput on a multi-layer stack.
bench-parallel:
	$(GO) test -bench='(Encode|Decode)Stack(Serial|Parallel)' -benchtime=3x .
