# Build/verify entry points for the llm265 reproduction.
#
# `make ci` is the canonical verify step: it builds everything, vets, runs
# the test suite, and repeats the suite under the race detector — mandatory
# since the encode/decode engine fans plane chunks out across a goroutine
# worker pool (internal/codec/engine.go).

GO ?= go

.PHONY: all build test vet race ci bench bench-parallel

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector run over the full tree; catches any data race in the
# parallel engine's worker pools.
race:
	$(GO) test -race ./...

ci: build vet test race

# One pass over every paper-artifact benchmark.
bench:
	$(GO) test -bench=. -benchtime=1x

# Serial vs parallel engine throughput on a multi-layer stack.
bench-parallel:
	$(GO) test -bench='(Encode|Decode)Stack(Serial|Parallel)' -benchtime=3x .
